//! Degeneracy and core decomposition (Definition 5).
//!
//! The degeneracy `λ` of a graph is the smallest `κ` such that every
//! subgraph has a vertex of degree at most `κ`. It is computed exactly by
//! the classic bucket-queue peeling algorithm in `O(n + m)`: repeatedly
//! remove a minimum-degree vertex; `λ` is the maximum degree seen at
//! removal time. The removal sequence is a *degeneracy ordering*: every
//! vertex has at most `λ` neighbors later in the order, which is what the
//! exact clique counters and the ERS analysis exploit.

use crate::ids::VertexId;
use crate::StaticGraph;

/// Result of the core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// The degeneracy `λ` of the graph.
    pub degeneracy: usize,
    /// Peeling order: `order[i]` is the i-th removed vertex. Every vertex
    /// has at most `degeneracy` neighbors at positions after its own.
    pub order: Vec<VertexId>,
    /// `position[v] = i` iff `order[i] == v`.
    pub position: Vec<u32>,
    /// Core number of each vertex (max k such that v is in the k-core).
    pub core: Vec<u32>,
}

impl CoreDecomposition {
    /// Compute the decomposition of `g`.
    pub fn compute(g: &impl StaticGraph) -> Self {
        let n = g.num_vertices();
        let mut deg: Vec<u32> = (0..n)
            .map(|v| g.degree(VertexId(v as u32)) as u32)
            .collect();
        let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

        // Bucket sort vertices by degree.
        let mut bin = vec![0u32; max_deg + 2];
        for &d in &deg {
            bin[d as usize + 1] += 1;
        }
        for i in 1..bin.len() {
            bin[i] += bin[i - 1];
        }
        let mut pos = vec![0u32; n]; // position of v in vert
        let mut vert = vec![VertexId(0); n]; // vertices sorted by degree
        {
            let mut cursor = bin.clone();
            for v in 0..n {
                let d = deg[v] as usize;
                pos[v] = cursor[d];
                vert[cursor[d] as usize] = VertexId(v as u32);
                cursor[d] += 1;
            }
        }

        let mut core = vec![0u32; n];
        let mut degeneracy = 0usize;
        let mut removed = vec![false; n];
        let mut order = Vec::with_capacity(n);

        for i in 0..n {
            let v = vert[i];
            degeneracy = degeneracy.max(deg[v.index()] as usize);
            core[v.index()] = deg[v.index()];
            removed[v.index()] = true;
            order.push(v);

            for &u in g.neighbors(v) {
                if removed[u.index()] || deg[u.index()] <= deg[v.index()] {
                    continue;
                }
                // Move u one bucket down: swap with the first vertex of its
                // current bucket, then decrement its degree.
                let du = deg[u.index()] as usize;
                let pu = pos[u.index()] as usize;
                let pw = bin[du] as usize;
                let w = vert[pw];
                if u != w {
                    vert.swap(pu, pw);
                    pos[u.index()] = pw as u32;
                    pos[w.index()] = pu as u32;
                }
                bin[du] += 1;
                deg[u.index()] -= 1;
            }
        }

        // Core numbers must be monotone-corrected: standard peeling yields
        // them directly because degrees only decrease.
        let mut position = vec![0u32; n];
        for (i, v) in order.iter().enumerate() {
            position[v.index()] = i as u32;
        }

        CoreDecomposition {
            degeneracy,
            order,
            position,
            core,
        }
    }

    /// Out-neighbors of `v` in the degeneracy-ordered DAG: neighbors that
    /// appear *after* `v` in the peeling order. There are at most `λ` of
    /// them for every vertex.
    pub fn later_neighbors(&self, g: &impl StaticGraph, v: VertexId) -> Vec<VertexId> {
        let pv = self.position[v.index()];
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|u| self.position[u.index()] > pv)
            .collect()
    }
}

/// Just the degeneracy number.
pub fn degeneracy(g: &impl StaticGraph) -> usize {
    CoreDecomposition::compute(g).degeneracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::AdjListGraph;

    #[test]
    fn tree_has_degeneracy_one() {
        // path 0-1-2-3-4
        let g = AdjListGraph::from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = gen::cycle_graph(7);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let g = gen::complete_graph(6);
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn star_has_degeneracy_one() {
        let g = gen::star_graph(9);
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = AdjListGraph::new(4);
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn ordering_respects_degeneracy_bound() {
        let g = gen::gnm(60, 240, 0xfeed);
        let cd = CoreDecomposition::compute(&g);
        for v in g.vertices() {
            let later = cd.later_neighbors(&g, v).len();
            assert!(
                later <= cd.degeneracy,
                "vertex {v:?} has {later} later neighbors > λ={}",
                cd.degeneracy
            );
        }
    }

    #[test]
    fn degeneracy_at_most_max_degree() {
        for seed in 0..5u64 {
            let g = gen::gnm(40, 120, seed);
            use crate::StaticGraph;
            assert!(degeneracy(&g) <= g.max_degree());
        }
    }

    #[test]
    fn core_numbers_bounded_by_degeneracy() {
        let g = gen::gnm(50, 200, 42);
        let cd = CoreDecomposition::compute(&g);
        assert_eq!(
            cd.core.iter().copied().max().unwrap() as usize,
            cd.degeneracy
        );
    }

    #[test]
    fn clique_plus_tail() {
        // K4 on {0,1,2,3} plus tail 3-4-5
        let g = AdjListGraph::from_pairs(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        );
        let cd = CoreDecomposition::compute(&g);
        assert_eq!(cd.degeneracy, 3);
        assert_eq!(cd.core[5], 1);
        assert_eq!(cd.core[0], 3);
    }
}
