//! A zoo of named small patterns beyond the parameterized families.
//!
//! These exercise the irregular cases of the decomposition and sampling
//! machinery: patterns mixing cycle and star pieces, patterns with
//! nontrivial automorphism groups, and patterns whose optimal
//! decomposition is not unique.

use crate::pattern::Pattern;

/// The paw: a triangle with a pendant edge.
pub fn paw() -> Pattern {
    Pattern::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).named("paw")
}

/// The diamond: `K_4` minus one edge.
pub fn diamond() -> Pattern {
    Pattern::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]).named("diamond")
}

/// The bull: a triangle with two pendant edges on different vertices.
pub fn bull() -> Pattern {
    Pattern::from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 4)]).named("bull")
}

/// The bowtie: two triangles sharing one vertex.
pub fn bowtie() -> Pattern {
    Pattern::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).named("bowtie")
}

/// The house: a 4-cycle with a triangle roof.
pub fn house() -> Pattern {
    Pattern::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]).named("house")
}

/// The tadpole `T(3,1)`: triangle plus a path of length 1 — alias of paw,
/// plus longer tails.
pub fn tadpole(tail: usize) -> Pattern {
    assert!(tail >= 1);
    let mut edges = vec![(0usize, 1usize), (1, 2), (2, 0)];
    for i in 0..tail {
        edges.push((2 + i, 3 + i));
    }
    Pattern::from_edges(3 + tail, edges).named(format!("tadpole3+{tail}"))
}

/// The butterfly-free check helper: all zoo patterns, for sweep tests.
pub fn all_zoo() -> Vec<Pattern> {
    vec![paw(), diamond(), bull(), bowtie(), house(), tadpole(2)]
}

/// Parse a pattern name as the CLI and the serve protocol spell it:
/// `triangle`/`T`/`K3`/`C3`, any named zoo pattern, or a parameterized
/// family `K<r>` / `C<k>` / `S<k>` / `P<k>` (case-insensitive prefix).
pub fn parse_pattern(s: &str) -> Option<Pattern> {
    let p = match s {
        "triangle" | "T" | "K3" | "C3" => Pattern::triangle(),
        "paw" => paw(),
        "diamond" => diamond(),
        "bull" => bull(),
        "bowtie" => bowtie(),
        "house" => house(),
        _ => {
            if s.len() < 2 || !s.is_char_boundary(1) {
                return None;
            }
            let (kind, num) = s.split_at(1);
            let k: usize = num.parse().ok()?;
            match kind {
                "K" | "k" => Pattern::clique(k),
                "C" | "c" => Pattern::cycle(k),
                "S" | "s" => Pattern::star(k),
                "P" | "p" => Pattern::path(k),
                _ => return None,
            }
        }
    };
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, rho, Rho};
    use crate::exact::generic::count_pattern;
    use crate::gen;

    #[test]
    fn zoo_sizes() {
        assert_eq!(paw().num_vertices(), 4);
        assert_eq!(paw().num_edges(), 4);
        assert_eq!(diamond().num_edges(), 5);
        assert_eq!(bull().num_vertices(), 5);
        assert_eq!(bowtie().num_edges(), 6);
        assert_eq!(house().num_edges(), 6);
    }

    #[test]
    fn zoo_connected() {
        for p in all_zoo() {
            assert!(p.is_connected(), "{p:?}");
        }
    }

    #[test]
    fn zoo_rho_values() {
        // paw: two disjoint edges -> rho = 2.
        assert_eq!(rho(&paw()).unwrap(), Rho::from_int(2));
        // diamond: two disjoint edges -> rho = 2.
        assert_eq!(rho(&diamond()).unwrap(), Rho::from_int(2));
        // bull: both pendant edges must carry weight 1 (they are the
        // only edges at the leaves) and the apex still needs 1/2 more,
        // realized as S2(apex-side) + S1: rho = 3.
        assert_eq!(rho(&bull()).unwrap(), Rho::from_int(3));
        // bowtie: C3 + S1 = 5/2.
        assert_eq!(rho(&bowtie()).unwrap(), Rho::from_halves(5));
        // house: C3 + S1 = 5/2.
        assert_eq!(rho(&house()).unwrap(), Rho::from_halves(5));
    }

    #[test]
    fn zoo_decompositions_partition() {
        for p in all_zoo() {
            let d = decompose(&p).unwrap();
            let mut covered = vec![false; p.num_vertices()];
            for piece in &d.pieces {
                for v in piece.vertices() {
                    assert!(!covered[v as usize], "{p:?} double cover");
                    covered[v as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "{p:?} incomplete cover");
            assert!(d.tuple_multiplicity >= 1);
        }
    }

    #[test]
    fn zoo_automorphisms() {
        assert_eq!(paw().automorphism_count(), 2);
        assert_eq!(diamond().automorphism_count(), 4);
        assert_eq!(bull().automorphism_count(), 2);
        assert_eq!(bowtie().automorphism_count(), 8);
        assert_eq!(house().automorphism_count(), 2);
    }

    #[test]
    fn zoo_exact_counts_on_known_graphs() {
        // One paw in the paw graph itself.
        let g = crate::AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_pattern(&g, &paw()), 1);
        // K4 contains 4 paws... each triangle (4 of them) x pendant
        // choice: triangle {a,b,c} + edge to d from any of a,b,c -> 4
        // triangles x 3 = 12 paws.
        let k4 = gen::complete_graph(4);
        assert_eq!(count_pattern(&k4, &paw()), 12);
        // Diamonds in K4: choose the missing edge: C(4,2)=6... a diamond
        // is K4 minus an edge; in K4 every 4-subset (just one) induces
        // K4 which contains 6 diamond copies (one per omitted edge).
        assert_eq!(count_pattern(&k4, &diamond()), 6);
    }

    #[test]
    fn parse_pattern_covers_the_cli_grammar() {
        assert_eq!(parse_pattern("triangle").unwrap().num_edges(), 3);
        assert_eq!(parse_pattern("K4").unwrap().num_vertices(), 4);
        assert_eq!(parse_pattern("c5").unwrap().num_edges(), 5);
        assert_eq!(parse_pattern("S3").unwrap().num_edges(), 3);
        // P_k has k edges and k + 1 vertices.
        assert_eq!(parse_pattern("P4").unwrap().num_vertices(), 5);
        assert_eq!(parse_pattern("P4").unwrap().num_edges(), 4);
        assert_eq!(parse_pattern("paw").unwrap().num_edges(), 4);
        assert!(parse_pattern("").is_none());
        assert!(parse_pattern("K").is_none());
        assert!(parse_pattern("Q7").is_none());
        assert!(parse_pattern("Kx").is_none());
        assert!(parse_pattern("é7").is_none());
    }

    #[test]
    fn zoo_patterns_samplable() {
        // The FGP machinery must handle the irregular decomposition
        // shapes (checked via plan construction; sampling is exercised
        // in sgs-core's tests and E1).
        for p in all_zoo() {
            let d = decompose(&p).unwrap();
            assert!(
                d.rho.as_f64() <= p.num_edges() as f64,
                "{p:?} rho out of range"
            );
        }
    }
}
