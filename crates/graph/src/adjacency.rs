//! Mutable adjacency-list graph.

use crate::ids::{Edge, VertexId};
use crate::StaticGraph;
use std::collections::HashSet;

/// An undirected graph stored as per-vertex adjacency lists plus an edge
/// set for O(1) adjacency queries.
///
/// This is the workhorse representation: generators build it, the
/// query-model oracles answer from it, and exact counters either use it
/// directly or convert to [`crate::CsrGraph`] first.
///
/// Neighbor lists record *insertion order*, which doubles as the
/// adjacency-list order used by `f3` (i-th neighbor) queries.
#[derive(Clone, Debug, Default)]
pub struct AdjListGraph {
    adj: Vec<Vec<VertexId>>,
    edge_set: HashSet<u64>,
    m: usize,
}

impl AdjListGraph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        AdjListGraph {
            adj: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            m: 0,
        }
    }

    /// Build from an iterator of edges; duplicate edges are ignored.
    /// The vertex count is `n`; edges referencing ids `>= n` panic.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = AdjListGraph::new(n);
        for e in edges {
            g.add_edge(e);
        }
        g
    }

    /// Convenience constructor from `(u32, u32)` pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Self::from_edges(n, pairs.into_iter().map(Edge::from))
    }

    /// Insert an undirected edge. Returns `true` if the edge was new.
    pub fn add_edge(&mut self, e: Edge) -> bool {
        assert!(
            e.v().index() < self.adj.len(),
            "edge {e:?} out of range for n={}",
            self.adj.len()
        );
        if !self.edge_set.insert(e.key()) {
            return false;
        }
        self.adj[e.u().index()].push(e.v());
        self.adj[e.v().index()].push(e.u());
        self.m += 1;
        true
    }

    /// Remove an undirected edge. Returns `true` if it was present.
    ///
    /// Removal is O(deg); it exists to materialize the *final* graph of a
    /// turnstile stream, not for hot paths.
    pub fn remove_edge(&mut self, e: Edge) -> bool {
        if !self.edge_set.remove(&e.key()) {
            return false;
        }
        let (u, v) = e.endpoints();
        self.adj[u.index()].retain(|&w| w != v);
        self.adj[v.index()].retain(|&w| w != u);
        self.m -= 1;
        true
    }

    /// All edges in an unspecified but deterministic order.
    pub fn edge_vec(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self.edge_set.iter().map(|&k| Edge::from_key(k)).collect();
        v.sort_unstable();
        v
    }

    /// Iterate vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.adj.len() as u32).map(VertexId)
    }
}

impl StaticGraph for AdjListGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v.index()]
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.edge_set.contains(&Edge::new(u, v).key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> AdjListGraph {
        // 0-1, 1-2, 2-0 triangle, 2-3 pendant
        AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.degree(VertexId(3)), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = triangle_plus_pendant();
        assert!(!g.add_edge(Edge::from((0, 1))));
        assert!(!g.add_edge(Edge::from((1, 0))));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn remove_edge_updates_all_views() {
        let mut g = triangle_plus_pendant();
        assert!(g.remove_edge(Edge::from((2, 0))));
        assert!(!g.remove_edge(Edge::from((2, 0))));
        assert_eq!(g.num_edges(), 3);
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(g.degree(VertexId(2)), 2);
        assert!(!g.neighbors(VertexId(0)).contains(&VertexId(2)));
    }

    #[test]
    fn ith_neighbor_follows_insertion_order() {
        let g = triangle_plus_pendant();
        // vertex 2 saw edges (1,2), (2,0), (2,3) in that order
        assert_eq!(g.ith_neighbor(VertexId(2), 0), Some(VertexId(1)));
        assert_eq!(g.ith_neighbor(VertexId(2), 1), Some(VertexId(0)));
        assert_eq!(g.ith_neighbor(VertexId(2), 2), Some(VertexId(3)));
        assert_eq!(g.ith_neighbor(VertexId(2), 3), None);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle_plus_pendant();
        let es = g.edges();
        assert_eq!(es.len(), 4);
        let vs = g.edge_vec();
        assert_eq!(vs.len(), 4);
    }
}
