//! # sgs-graph — graph substrate for streaming subgraph counting
//!
//! This crate provides every *static* graph ingredient required by the
//! reproduction of Fichtenberger & Peng, *Approximately Counting Subgraphs
//! in Data Streams* (PODS 2022):
//!
//! * [`AdjListGraph`] / [`CsrGraph`] — concrete undirected graph
//!   representations with degree, neighbor, and adjacency queries,
//! * [`order`] — the degree-then-id total vertex order `≺_G` (Definition 12),
//! * [`degeneracy`] — core decomposition and degeneracy orderings
//!   (Definition 5),
//! * [`Pattern`] — small target subgraphs `H` with automorphism machinery,
//! * [`decompose`] — Lemma 4 decompositions of `H` into vertex-disjoint odd
//!   cycles and stars, and the fractional edge-cover number `ρ(H)`
//!   (Definition 3),
//! * [`canonical`] — canonical cycle / canonical star predicates
//!   (Definitions 13 and 14),
//! * [`exact`] — exact (ground-truth) subgraph counters,
//! * [`gen`] — seeded workload generators.
//!
//! All randomized components take explicit seeds so experiments are
//! reproducible bit-for-bit.

pub mod adjacency;
pub mod canonical;
pub mod csr;
pub mod decompose;
pub mod degeneracy;
pub mod exact;
pub mod gen;
pub mod ids;
pub mod io;
pub mod order;
pub mod pattern;
pub mod zoo;

pub use adjacency::AdjListGraph;
pub use csr::CsrGraph;
pub use decompose::{CycleStarDecomposition, Piece, Rho};
pub use degeneracy::CoreDecomposition;
pub use ids::{Edge, VertexId};
pub use pattern::Pattern;

/// Common trait for static (fully materialized) undirected graphs.
///
/// This is the interface the *exact* counters and the query-model oracles
/// are written against. `u32` vertex ids keep hot structures compact (see
/// the type-size guidance in the Rust perf book).
pub trait StaticGraph {
    /// Number of vertices `n`; vertex ids are `0..n`.
    fn num_vertices(&self) -> usize;
    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize;
    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;
    /// Neighbors of `v` in a fixed (representation-defined) order.
    fn neighbors(&self, v: VertexId) -> &[VertexId];
    /// Whether the undirected edge `{u, v}` is present.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;
    /// The `i`-th neighbor of `v` (0-based) in the representation order,
    /// mirroring query type `f3` of Definition 6.
    fn ith_neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.neighbors(v).get(i).copied()
    }
    /// Iterate over all undirected edges once each.
    fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() as u32 {
            for &w in self.neighbors(VertexId(u)) {
                if u < w.0 {
                    out.push(Edge::new(VertexId(u), w));
                }
            }
        }
        out
    }
    /// Maximum degree `Δ(G)`.
    fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId(v as u32)))
            .max()
            .unwrap_or(0)
    }
}
