//! Multi-query multiplexing: one shared pass serves many concurrent
//! queries.
//!
//! Every executor so far owns its passes — N concurrent round-adaptive
//! algorithms cost N full replays of the stream per round. But nothing a
//! pass computes couples one query to another: the router's FlatIndex is
//! query-agnostic, `f1` targets are drawn from per-pass coins, and every
//! sampler lane is seeded by its own batch slot. So a [`QuerySet`]
//! admission-batches arriving jobs (different patterns, trial counts,
//! reservoir modes, seeds) into **rounds**, concatenates each round's
//! per-job batches into one merged batch, builds ONE shared
//! QueryRouter/FlatIndex pass per round, and fans each delivery out to
//! every active job's sampler banks. N queries now cost `max_j rounds_j`
//! shared passes instead of `Σ_j rounds_j` private ones.
//!
//! **Per-job answers are byte-identical to solo runs** — at any shard
//! count, block size, and schedule — because the multiplexer replays
//! each job's private coin chain exactly:
//!
//! * a job's pass seed is `split_seed(job_seed, job_passes)` where
//!   `job_passes` counts only the rounds *this job* participates in —
//!   the same chain [`crate::sharded::run_insertion_sharded`] walks;
//! * `f1` targets are drawn per job from `FastRng(job_pass_seed)` in the
//!   job's own batch order — the exact coin sequence of its solo pass —
//!   then merged across jobs by position for cursor matching (hits
//!   scatter to disjoint slots, so merge order cannot leak between
//!   jobs);
//! * every sampler lane (reservoir or ℓ₀) is seeded by
//!   `split_seed(job_pass_seed, job_slot)` with `job_slot` the query's
//!   index in the **job's own** batch — solo seeding verbatim;
//! * each job owns a private [`ReservoirBank`] in its own
//!   [`ReservoirMode`]: per-lane reservoir state depends only on the
//!   lane seed and the lane's offer sequence (never on bank-global lane
//!   order — `reservoir.rs` pins this), and a job's lanes inside one
//!   shared vertex group form a contiguous run (job batches are
//!   contiguous in the merged batch), so one `offer_cohort` per
//!   (vertex, job) segment reproduces the solo offer sequence exactly;
//! * turnstile ℓ₀-samplers are per-lane independent linear sketches, so
//!   the shared pass keeps flat banks aligned with the merged slot lists
//!   and merges across shards exactly like the solo sharded pass.
//!
//! `tests/multiplex_equivalence.rs` pins all of this (shards 1/2/4 ×
//! mixed query sets × insertion/turnstile × blocked/scalar × reservoir
//! offer/skip) against solo runs, which are themselves pinned to the
//! frozen reference executors.
//!
//! **Diagnostics.** Shared passes make one slow query everyone's
//! problem, so every run returns an [`AdmissionReport`]: per-round
//! participant lists and critical-path pass nanos (via the
//! [`RouterArena`]'s existing per-shard timing), per-job accumulated
//! pass nanos / lane counts, and — on the ring engine — the broadcast
//! producer's [`StallEvent`]s, so a stalled round names the consumer it
//! was blocked on.

use crate::accounting::ExecReport;
use crate::arena::{RouterArena, ShardSlot};
use crate::broadcast::BroadcastOpts;
use crate::exec::{sort_targets, PassOpts, ANSWER_BYTES};
use crate::policy::ExecPolicy;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use crate::router::RouterMode;
use crate::sharded::{merge_answers, run_shards, split_batch, ShardOutcome};
use sgs_graph::{Edge, VertexId};
use sgs_stream::broadcast::{Broadcast, BroadcastConsumer, RoutedProducer, TryNext};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::l0::{L0Mode, L0Sampler};
use sgs_stream::reservoir::{ReservoirBank, ReservoirMode};
use sgs_stream::sharded::{ShardUpdate, ShardedFeed};
use sgs_stream::EdgeUpdate;
use std::time::{Duration, Instant};

pub use sgs_stream::broadcast::StallEvent;

/// Producer stalls longer than this are recorded as [`StallEvent`]s on
/// the ring engine — long enough to ignore scheduler jitter, short
/// enough to catch a consumer that is actually wedged.
const MUX_STALL_THRESHOLD: Duration = Duration::from_millis(10);

/// One admitted job: a round-adaptive algorithm plus the private
/// execution knobs a solo run would have owned.
struct MuxJob<A: RoundAdaptive> {
    alg: A,
    seed: u64,
    reservoir: ReservoirMode,
    /// Passes *this job* has participated in (its private pass chain).
    passes: u64,
    /// Answers to the job's previous batch, awaiting its next round.
    answers: Vec<Answer>,
    done: bool,
    report: ExecReport,
}

/// Per-round multiplexing stats: who rode the shared pass and what it
/// cost on the critical path.
#[derive(Clone, Debug)]
pub struct MuxRoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Job ids that contributed a batch to this round.
    pub participants: Vec<u32>,
    /// Merged batch length across all participants.
    pub batch_len: usize,
    /// Critical-path pass time: max over shards of the shard's feed
    /// nanos for this round (the arena's existing per-shard timing).
    pub pass_nanos: u64,
}

/// Per-job multiplexing stats — the "name the slow query" half of the
/// admission report.
#[derive(Clone, Debug, Default)]
pub struct MuxJobStats {
    /// The job id [`QuerySet::admit`] returned.
    pub job: u32,
    /// Rounds this job participated in.
    pub rounds: usize,
    /// Total queries the job asked.
    pub queries: usize,
    /// Sum of the critical-path nanos of every shared pass this job
    /// rode: the job's share of the serving bill. A job that keeps
    /// rounds alive after everyone else finished accumulates the
    /// difference here.
    pub pass_nanos: u64,
    /// `RandomNeighbor` sampler lanes the job asked for, summed over
    /// rounds.
    pub sampler_lanes: usize,
    /// `RandomEdge` position targets the job drew, summed over rounds.
    pub f1_targets: usize,
}

/// What one [`QuerySet`] run observed: per-round and per-job timing plus
/// any producer stalls the ring engine recorded.
#[derive(Clone, Debug, Default)]
pub struct AdmissionReport {
    /// One entry per shared round, in execution order.
    pub rounds: Vec<MuxRoundStats>,
    /// One entry per admitted job, indexed by job id.
    pub jobs: Vec<MuxJobStats>,
    /// Ring-engine producer stalls (empty on the sharded engine): each
    /// names the consumer the producer sat blocked on past the
    /// threshold.
    pub stalls: Vec<StallEvent>,
}

impl AdmissionReport {
    /// The job with the largest accumulated critical-path share — the
    /// query to evict (or re-batch) first when a shared round is slow.
    pub fn slowest_job(&self) -> Option<u32> {
        self.jobs.iter().max_by_key(|j| j.pass_nanos).map(|j| j.job)
    }
}

/// Everything a [`QuerySet`] run returns: per-job outputs and solo-shaped
/// execution reports (indexed by job id), plus the admission report.
pub struct MuxOutput<O> {
    /// Per-job algorithm outputs.
    pub outputs: Vec<O>,
    /// Per-job reports. `rounds`/`passes`/`queries`/`answer_bytes` match
    /// the job's solo run exactly; `max_pass_space_bytes` is the
    /// **shared** pass footprint of the rounds the job rode (the space
    /// actually in play while it was served), so it is not comparable to
    /// a solo figure.
    pub reports: Vec<ExecReport>,
    /// Multiplexing diagnostics for the whole run.
    pub admission: AdmissionReport,
}

/// An admission batch of concurrent round-adaptive jobs, executed with
/// one shared pass per round. See the module docs for the equivalence
/// argument; see [`MuxOutput`] for what comes back.
pub struct QuerySet<A: RoundAdaptive> {
    jobs: Vec<MuxJob<A>>,
}

impl<A: RoundAdaptive> Default for QuerySet<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: RoundAdaptive> QuerySet<A> {
    /// An empty admission batch.
    pub fn new() -> Self {
        QuerySet { jobs: Vec::new() }
    }

    /// Admit one job with its private seed and reservoir mode; returns
    /// the job id that indexes every per-job vector in [`MuxOutput`].
    /// The job's answers will be byte-identical to running `alg` alone
    /// through the solo executor with the same `seed` and mode.
    pub fn admit(&mut self, alg: A, seed: u64, reservoir: ReservoirMode) -> usize {
        self.jobs.push(MuxJob {
            alg,
            seed,
            reservoir,
            passes: 0,
            answers: Vec::new(),
            done: false,
            report: ExecReport::default(),
        });
        self.jobs.len() - 1
    }

    /// Number of admitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs were admitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run every job to completion over shared **insertion-model**
    /// passes on the scoped-thread sharded engine. `opts.block <= 1` is
    /// the scalar feed path; answers are identical for any block size
    /// and policy. `opts.reservoir` is ignored — each job's admitted
    /// reservoir mode governs its own lanes.
    pub fn run_insertion(
        self,
        feed: &ShardedFeed,
        arena: &mut RouterArena,
        opts: PassOpts,
        policy: ExecPolicy,
    ) -> MuxOutput<A::Output> {
        self.run_inner(
            feed,
            arena,
            opts,
            MuxModel::Insertion,
            Engine::Sharded(policy),
        )
    }

    /// Turnstile sibling of [`QuerySet::run_insertion`]; `opts.l0`
    /// selects the ℓ₀ bank feed path for every lane of the shared pass.
    pub fn run_turnstile(
        self,
        feed: &ShardedFeed,
        arena: &mut RouterArena,
        opts: PassOpts,
        policy: ExecPolicy,
    ) -> MuxOutput<A::Output> {
        self.run_inner(
            feed,
            arena,
            opts,
            MuxModel::Turnstile,
            Engine::Sharded(policy),
        )
    }

    /// [`QuerySet::run_insertion`] riding the broadcast ring: one
    /// producer pushes each round's routed stream once and every shard's
    /// shared-pass machine drains it through its own cursor. Producer
    /// stalls land in [`AdmissionReport::stalls`]. Answers are identical
    /// to the sharded engine's.
    pub fn run_insertion_broadcast(
        self,
        feed: &ShardedFeed,
        arena: &mut RouterArena,
        opts: PassOpts,
        bcast: BroadcastOpts,
    ) -> MuxOutput<A::Output> {
        self.run_inner(feed, arena, opts, MuxModel::Insertion, Engine::Ring(bcast))
    }

    /// Turnstile sibling of [`QuerySet::run_insertion_broadcast`].
    pub fn run_turnstile_broadcast(
        self,
        feed: &ShardedFeed,
        arena: &mut RouterArena,
        opts: PassOpts,
        bcast: BroadcastOpts,
    ) -> MuxOutput<A::Output> {
        self.run_inner(feed, arena, opts, MuxModel::Turnstile, Engine::Ring(bcast))
    }

    fn run_inner(
        mut self,
        feed: &ShardedFeed,
        arena: &mut RouterArena,
        opts: PassOpts,
        model: MuxModel,
        engine: Engine,
    ) -> MuxOutput<A::Output> {
        let shards = feed.num_shards();
        let mut admission = AdmissionReport {
            rounds: Vec::new(),
            jobs: (0..self.jobs.len())
                .map(|j| MuxJobStats {
                    job: j as u32,
                    ..MuxJobStats::default()
                })
                .collect(),
            stalls: Vec::new(),
        };
        arena.begin_run();
        let mut round_no = 0usize;
        loop {
            // Admission: collect each active job's next batch into one
            // merged batch, advancing only the participants' pass chains.
            let mut plan = RoundPlan::default();
            for (j, job) in self.jobs.iter_mut().enumerate() {
                if job.done {
                    continue;
                }
                let batch = job.alg.next_round(&job.answers);
                if batch.is_empty() {
                    job.done = true;
                    job.answers = Vec::new();
                    continue;
                }
                job.passes += 1;
                job.report.rounds += 1;
                job.report.passes += 1;
                job.report.queries += batch.len();
                job.report.answer_bytes += batch.len() * ANSWER_BYTES;
                let p = plan.participants.len();
                let pass_seed = split_seed(job.seed, job.passes);
                plan.participants.push(j as u32);
                plan.pass_seeds.push(pass_seed);
                plan.modes.push(job.reservoir);
                plan.starts.push(plan.concat.len());
                let js = &mut admission.jobs[j];
                for (k, q) in batch.iter().enumerate() {
                    plan.slot_seeds.push(split_seed(pass_seed, k as u64));
                    plan.slot_part.push(p as u32);
                    match q {
                        Query::RandomEdge => js.f1_targets += 1,
                        Query::RandomNeighbor(_) => js.sampler_lanes += 1,
                        _ => {}
                    }
                }
                plan.concat.extend(batch);
            }
            if plan.concat.is_empty() {
                break;
            }
            plan.starts.push(plan.concat.len());
            round_no += 1;
            let (answers, space) = match model {
                MuxModel::Insertion => {
                    mux_insertion_pass(&plan, feed, arena, opts, &engine, &mut admission.stalls)
                }
                MuxModel::Turnstile => {
                    mux_turnstile_pass(&plan, feed, arena, opts, &engine, &mut admission.stalls)
                }
            };
            // Critical-path pass time via the arena's per-shard timing.
            let round_nanos = arena.slots[..shards]
                .iter()
                .filter_map(|s| s.pass_nanos.last().copied())
                .max()
                .unwrap_or(0);
            for (p, &j) in plan.participants.iter().enumerate() {
                let (a, b) = (plan.starts[p], plan.starts[p + 1]);
                let job = &mut self.jobs[j as usize];
                job.answers.clear();
                job.answers.extend_from_slice(&answers[a..b]);
                job.report.max_pass_space_bytes = job.report.max_pass_space_bytes.max(space);
                let js = &mut admission.jobs[j as usize];
                js.rounds += 1;
                js.queries += b - a;
                js.pass_nanos += round_nanos;
            }
            admission.rounds.push(MuxRoundStats {
                round: round_no,
                participants: plan.participants,
                batch_len: plan.concat.len(),
                pass_nanos: round_nanos,
            });
            arena.note_round();
        }
        arena.end_run();
        let outputs = self.jobs.iter_mut().map(|j| j.alg.output()).collect();
        let reports = self.jobs.iter().map(|j| j.report).collect();
        MuxOutput {
            outputs,
            reports,
            admission,
        }
    }
}

/// Which transformation theorem's pass machinery a run uses.
#[derive(Clone, Copy)]
enum MuxModel {
    Insertion,
    Turnstile,
}

/// Which delivery engine drives the shared pass.
enum Engine {
    /// Scoped-thread shard workers over the feed's private buffers.
    Sharded(ExecPolicy),
    /// One broadcast ring: a single producer, one cursor per shard.
    Ring(BroadcastOpts),
}

/// One shared round, planned: the merged batch plus everything needed to
/// replay each participant's private coins.
#[derive(Default)]
struct RoundPlan {
    /// The concatenation of every participant's batch, in job order.
    concat: Vec<Query>,
    /// Participant index → job id.
    participants: Vec<u32>,
    /// Participant index → start offset in `concat`; one trailing entry
    /// holds `concat.len()`, so participant `p` owns `starts[p]..starts[p+1]`.
    starts: Vec<usize>,
    /// Participant index → the job's private pass seed for this round.
    pass_seeds: Vec<u64>,
    /// Participant index → the job's reservoir mode.
    modes: Vec<ReservoirMode>,
    /// Merged slot → `split_seed(owner's pass seed, job-local slot)` —
    /// the exact lane seed the owner's solo pass would use.
    slot_seeds: Vec<u64>,
    /// Merged slot → owning participant index.
    slot_part: Vec<u32>,
}

/// Draw every participant's `f1` targets from its own pass rng in its
/// own batch order (the solo coin sequences), keyed by merged slot, then
/// sort by position for cursor matching. Push order has ascending merged
/// slots (participants are planned in job order), matching what
/// `sort_targets` expects from the solo draw.
fn draw_mux_targets(plan: &RoundPlan, stream_len: u64, targets: &mut Vec<(u64, u32)>) {
    targets.clear();
    if stream_len == 0 {
        return;
    }
    for (p, &pass_seed) in plan.pass_seeds.iter().enumerate() {
        let mut rng = FastRng::seed_from_u64(pass_seed);
        for gs in plan.starts[p]..plan.starts[p + 1] {
            if matches!(plan.concat[gs], Query::RandomEdge) {
                targets.push((rng.gen_range(0..stream_len), gs as u32));
            }
        }
    }
    sort_targets(targets, stream_len);
}

/// One maximal run of same-job sampler lanes inside one shared vertex
/// group: the fan-out unit. A delivery to the group offers `item` to
/// bank lanes `bank_start..bank_end` of participant `part`'s private
/// reservoir bank — one `offer_cohort` per segment, exactly the solo
/// group offer the owner's own pass would make.
#[derive(Clone, Copy)]
struct MuxSegment {
    part: u32,
    bank_start: u32,
    bank_end: u32,
}

/// One shard's shared insertion-model pass: the multiplexed counterpart
/// of [`crate::sharded::InsertionShardPass`]. One router over the merged
/// sub-batch; per-participant reservoir banks (each in its job's own
/// mode, lanes seeded with the job's solo coins) fed through the segment
/// table.
struct MuxInsertionShardPass<'a> {
    slot: &'a mut ShardSlot,
    targets: &'a [(u64, u32)],
    block: usize,
    /// One private bank per participant (possibly zero lanes).
    banks: Vec<ReservoirBank<Edge>>,
    /// Flat segment table, grouped by shared vertex group.
    segments: Vec<MuxSegment>,
    /// Shared group start lane → segment range in `segments`.
    group_segs: Vec<(u32, u32)>,
    /// Shared lane → (participant, lane in that participant's bank).
    lane_owner: Vec<(u32, u32)>,
    nbr_verts: Vec<VertexId>,
    edge_hits: Vec<(u32, Edge)>,
    cursor: usize,
    buf: Vec<EdgeUpdate>,
}

/// Build the per-participant lane/segment structures over the shard's
/// rebuilt router. Within one shared vertex group, lanes ascend by local
/// slot, local slots ascend by merged slot, and each participant's
/// merged range is contiguous — so each participant's lanes in a group
/// form exactly one contiguous run, and its bank ranges come out
/// ascending and disjoint (what `bind_cohorts` requires).
#[allow(clippy::type_complexity)] // four parallel tables, consumed as locals right at the call site
fn build_lane_tables(
    slot: &ShardSlot,
    plan: &RoundPlan,
) -> (
    Vec<Vec<u64>>,
    Vec<(u32, u32)>,
    Vec<MuxSegment>,
    Vec<(u32, u32)>,
) {
    let nparts = plan.participants.len();
    let nbr_slots = slot.router.neighbor_slots();
    let mut lane_seeds: Vec<Vec<u64>> = vec![Vec::new(); nparts];
    let mut lane_owner: Vec<(u32, u32)> = Vec::with_capacity(nbr_slots.len());
    for &ls in nbr_slots {
        let gs = slot.slot_map[ls as usize] as usize;
        let p = plan.slot_part[gs] as usize;
        lane_owner.push((p as u32, lane_seeds[p].len() as u32));
        lane_seeds[p].push(plan.slot_seeds[gs]);
    }
    let mut segments: Vec<MuxSegment> = Vec::new();
    let mut group_segs: Vec<(u32, u32)> = vec![(0, 0); nbr_slots.len()];
    for (s, e) in slot.router.neighbor_group_ranges() {
        let beg = segments.len() as u32;
        let mut li = s as usize;
        while li < e as usize {
            let (part, bank_start) = lane_owner[li];
            let mut lj = li + 1;
            while lj < e as usize && lane_owner[lj].0 == part {
                lj += 1;
            }
            segments.push(MuxSegment {
                part,
                bank_start,
                bank_end: bank_start + (lj - li) as u32,
            });
            li = lj;
        }
        group_segs[s as usize] = (beg, segments.len() as u32);
    }
    (lane_seeds, lane_owner, segments, group_segs)
}

impl<'a> MuxInsertionShardPass<'a> {
    fn new(
        slot: &'a mut ShardSlot,
        targets: &'a [(u64, u32)],
        plan: &RoundPlan,
        opts: PassOpts,
    ) -> Self {
        slot.router.rebuild(&slot.sub_batch, RouterMode::Insertion);
        let (lane_seeds, lane_owner, segments, group_segs) = build_lane_tables(slot, plan);
        let mut banks: Vec<ReservoirBank<Edge>> = lane_seeds
            .into_iter()
            .zip(&plan.modes)
            .map(|(seeds, &mode)| ReservoirBank::from_seeds(seeds, mode))
            .collect();
        for (pi, bank) in banks.iter_mut().enumerate() {
            bank.bind_cohorts(
                segments
                    .iter()
                    .filter(|sg| sg.part as usize == pi)
                    .map(|sg| (sg.bank_start, sg.bank_end)),
            );
        }
        let nbr_verts: Vec<VertexId> = slot.router.neighbor_vertices().collect();
        MuxInsertionShardPass {
            slot,
            targets,
            block: opts.block,
            banks,
            segments,
            group_segs,
            lane_owner,
            nbr_verts,
            edge_hits: Vec::new(),
            cursor: 0,
            buf: Vec::new(),
        }
    }

    /// Absorb the next run of deliveries (global stream order, possibly
    /// a partial prefix — callable repeatedly).
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        if self.block <= 1 {
            for su in deliveries {
                debug_assert!(su.update.is_insert(), "insertion executor fed a deletion");
                let pos = su.position as u64;
                while self.cursor < self.targets.len() && self.targets[self.cursor].0 < pos {
                    self.cursor += 1;
                }
                while self.cursor < self.targets.len() && self.targets[self.cursor].0 == pos {
                    self.edge_hits
                        .push((self.targets[self.cursor].1, su.update.edge));
                    self.cursor += 1;
                }
                let edge = su.update.edge;
                let banks = &mut self.banks;
                let segments = &self.segments;
                let group_segs = &self.group_segs;
                self.slot.router.feed(su.update, |s, _e| {
                    let (b0, b1) = group_segs[s as usize];
                    for sg in &segments[b0 as usize..b1 as usize] {
                        banks[sg.part as usize].offer_cohort(
                            sg.bank_start as usize,
                            sg.bank_end as usize,
                            edge,
                        );
                    }
                });
            }
        } else {
            let mut buf = std::mem::take(&mut self.buf);
            for chunk in deliveries.chunks(self.block) {
                buf.clear();
                for su in chunk {
                    debug_assert!(su.update.is_insert(), "insertion executor fed a deletion");
                    let pos = su.position as u64;
                    while self.cursor < self.targets.len() && self.targets[self.cursor].0 < pos {
                        self.cursor += 1;
                    }
                    while self.cursor < self.targets.len() && self.targets[self.cursor].0 == pos {
                        self.edge_hits
                            .push((self.targets[self.cursor].1, su.update.edge));
                        self.cursor += 1;
                    }
                    buf.push(su.update);
                }
                let banks = &mut self.banks;
                let segments = &self.segments;
                let group_segs = &self.group_segs;
                self.slot.router.feed_block(&buf, |j, s, _e| {
                    let (b0, b1) = group_segs[s as usize];
                    for sg in &segments[b0 as usize..b1 as usize] {
                        banks[sg.part as usize].offer_cohort(
                            sg.bank_start as usize,
                            sg.bank_end as usize,
                            buf[j].edge,
                        );
                    }
                });
            }
            self.buf = buf;
        }
    }

    fn record_pass_nanos(&mut self, nanos: u64) {
        self.slot.pass_nanos.push(nanos);
    }

    /// End of stream: fill shard-local answers and report the outcome.
    fn finish(self) -> ShardOutcome {
        let MuxInsertionShardPass {
            slot,
            banks,
            lane_owner,
            nbr_verts,
            edge_hits,
            ..
        } = self;
        let space_bytes =
            slot.router.space_bytes() + banks.iter().map(ReservoirBank::space_bytes).sum::<usize>();
        slot.answers.clear();
        slot.answers
            .resize(slot.sub_batch.len(), Answer::Edge(None));
        for (li, &ls) in slot.router.neighbor_slots().iter().enumerate() {
            let (p, lane) = lane_owner[li];
            let v = nbr_verts[li];
            slot.answers[ls as usize] =
                Answer::Neighbor(banks[p as usize].sample(lane as usize).map(|e| e.other(v)));
        }
        slot.router.distribute(&mut slot.answers);
        ShardOutcome {
            edge_hits,
            f1_bank: Vec::new(),
            space_bytes,
        }
    }
}

/// One shard's shared turnstile pass: the multiplexed counterpart of
/// [`crate::sharded::TurnstileShardPass`]. ℓ₀-samplers are per-lane
/// independent linear sketches, so the shared pass needs no per-job
/// banks — one flat `f1` bank aligned with the merged `RandomEdge` slot
/// list and one flat neighbor bank aligned with the shared router's
/// lanes, every sampler seeded with its owner's solo coins.
struct MuxTurnstileShardPass<'a> {
    slot: &'a mut ShardSlot,
    block: usize,
    l0: L0Mode,
    f1_bank: Vec<L0Sampler>,
    nbr_samplers: Vec<L0Sampler>,
    nbr_verts: Vec<VertexId>,
    buf: Vec<EdgeUpdate>,
    owned_kd: Vec<(u64, i64)>,
}

impl<'a> MuxTurnstileShardPass<'a> {
    fn new(
        slot: &'a mut ShardSlot,
        num_vertices: usize,
        f1_slots: &[u32],
        plan: &RoundPlan,
        opts: PassOpts,
    ) -> Self {
        slot.router.rebuild(&slot.sub_batch, RouterMode::Turnstile);
        let f1_bank: Vec<L0Sampler> = f1_slots
            .iter()
            .map(|&gs| L0Sampler::for_edge_domain(num_vertices, plan.slot_seeds[gs as usize]))
            .collect();
        let nbr_samplers: Vec<L0Sampler> = slot
            .router
            .neighbor_slots()
            .iter()
            .map(|&ls| {
                L0Sampler::for_edge_domain(
                    num_vertices,
                    plan.slot_seeds[slot.slot_map[ls as usize] as usize],
                )
            })
            .collect();
        let nbr_verts: Vec<VertexId> = slot.router.neighbor_vertices().collect();
        MuxTurnstileShardPass {
            slot,
            block: opts.block,
            l0: opts.l0,
            f1_bank,
            nbr_samplers,
            nbr_verts,
            buf: Vec::new(),
            owned_kd: Vec::new(),
        }
    }

    /// Absorb the next run of deliveries (callable repeatedly) — the
    /// same delivery loop as the solo turnstile shard pass.
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        let l0 = self.l0;
        if self.block <= 1 {
            for su in deliveries {
                let d = su.update.delta as i64;
                if su.owned {
                    let key = su.update.edge.key();
                    for s in &mut self.f1_bank {
                        s.update_with(l0, key, d);
                    }
                }
                let edge = su.update.edge;
                let samplers = &mut self.nbr_samplers;
                let verts = &self.nbr_verts;
                self.slot.router.feed(su.update, |s, e| {
                    for i in s as usize..e as usize {
                        samplers[i].update_with(l0, edge.other(verts[i]).0 as u64, d);
                    }
                });
            }
        } else {
            let mut buf = std::mem::take(&mut self.buf);
            let mut owned_kd = std::mem::take(&mut self.owned_kd);
            for chunk in deliveries.chunks(self.block) {
                buf.clear();
                owned_kd.clear();
                for su in chunk {
                    if su.owned {
                        owned_kd.push((su.update.edge.key(), su.update.delta as i64));
                    }
                    buf.push(su.update);
                }
                for s in &mut self.f1_bank {
                    s.update_batch_with(l0, &owned_kd);
                }
                let samplers = &mut self.nbr_samplers;
                let verts = &self.nbr_verts;
                self.slot.router.feed_block(&buf, |j, s, e| {
                    let u = buf[j];
                    for i in s as usize..e as usize {
                        samplers[i].update_with(
                            l0,
                            u.edge.other(verts[i]).0 as u64,
                            u.delta as i64,
                        );
                    }
                });
            }
            self.buf = buf;
            self.owned_kd = owned_kd;
        }
    }

    fn record_pass_nanos(&mut self, nanos: u64) {
        self.slot.pass_nanos.push(nanos);
    }

    /// End of stream: fill shard-local answers and report the outcome.
    fn finish(self) -> ShardOutcome {
        let MuxTurnstileShardPass {
            slot,
            f1_bank,
            nbr_samplers,
            ..
        } = self;
        let space_bytes = slot.router.space_bytes()
            + f1_bank
                .iter()
                .chain(&nbr_samplers)
                .map(sgs_stream::SpaceUsage::space_bytes)
                .sum::<usize>();
        slot.answers.clear();
        slot.answers
            .resize(slot.sub_batch.len(), Answer::Edge(None));
        for (&ls, s) in slot.router.neighbor_slots().iter().zip(&nbr_samplers) {
            slot.answers[ls as usize] = Answer::Neighbor(s.sample().map(|k| VertexId(k as u32)));
        }
        slot.router.distribute(&mut slot.answers);
        ShardOutcome {
            edge_hits: Vec::new(),
            f1_bank,
            space_bytes,
        }
    }
}

/// One shared insertion pass over the whole merged batch: split, draw
/// merged targets, run every shard's mux machine on the chosen engine,
/// merge back.
fn mux_insertion_pass(
    plan: &RoundPlan,
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    engine: &Engine,
    stalls: &mut Vec<StallEvent>,
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    split_batch(&plan.concat, RouterMode::Insertion, feed.shard_map(), arena);
    let mut targets = std::mem::take(&mut arena.scratch_targets);
    draw_mux_targets(plan, feed.stream_len() as u64, &mut targets);
    let outcomes = match engine {
        Engine::Sharded(policy) => {
            feed.begin_pass();
            run_shards(&mut arena.slots[..shards], *policy, |i, slot| {
                let t0 = Instant::now();
                let mut pass = MuxInsertionShardPass::new(&mut *slot, &targets, plan, opts);
                pass.feed(feed.shard(i));
                let out = pass.finish();
                slot.pass_nanos.push(t0.elapsed().as_nanos() as u64);
                out
            })
        }
        Engine::Ring(bcast) => {
            let passes: Vec<MuxInsertionShardPass<'_>> = arena.slots[..shards]
                .iter_mut()
                .map(|slot| MuxInsertionShardPass::new(slot, &targets, plan, opts))
                .collect();
            drive_mux_ring(feed, passes, *bcast, stalls)
        }
    };
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>() + targets.len() * 16;
    arena.scratch_targets = targets;
    let answers = merge_answers(plan.concat.len(), feed, arena, shards, &outcomes);
    (answers, space)
}

/// Turnstile sibling of [`mux_insertion_pass`]: per-shard `f1` banks fed
/// owned deliveries, merged linearly across shards — solo sharded
/// semantics over the merged slot list.
fn mux_turnstile_pass(
    plan: &RoundPlan,
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    engine: &Engine,
    stalls: &mut Vec<StallEvent>,
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    split_batch(&plan.concat, RouterMode::Turnstile, feed.shard_map(), arena);
    let f1_slots = std::mem::take(&mut arena.scratch_edge);
    let n = feed.num_vertices();
    let mut outcomes = match engine {
        Engine::Sharded(policy) => {
            feed.begin_pass();
            run_shards(&mut arena.slots[..shards], *policy, |i, slot| {
                let t0 = Instant::now();
                let mut pass = MuxTurnstileShardPass::new(&mut *slot, n, &f1_slots, plan, opts);
                pass.feed(feed.shard(i));
                let out = pass.finish();
                slot.pass_nanos.push(t0.elapsed().as_nanos() as u64);
                out
            })
        }
        Engine::Ring(bcast) => {
            let passes: Vec<MuxTurnstileShardPass<'_>> = arena.slots[..shards]
                .iter_mut()
                .map(|slot| MuxTurnstileShardPass::new(slot, n, &f1_slots, plan, opts))
                .collect();
            drive_mux_ring(feed, passes, *bcast, stalls)
        }
    };
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>();
    let (head, rest) = outcomes.split_at_mut(1);
    for o in rest.iter() {
        for (a, b) in head[0].f1_bank.iter_mut().zip(&o.f1_bank) {
            a.merge(b);
        }
    }
    let mut answers = merge_answers(plan.concat.len(), feed, arena, shards, &outcomes);
    for (&slot, s) in f1_slots.iter().zip(&outcomes[0].f1_bank) {
        answers[slot as usize] = Answer::Edge(s.sample().map(Edge::from_key));
    }
    arena.scratch_edge = f1_slots;
    (answers, space)
}

/// The shard-pass surface the mux ring driver needs (the multiplexed
/// counterpart of the broadcast module's private RingPass).
trait MuxRingPass: Send {
    fn feed(&mut self, deliveries: &[ShardUpdate]);
    fn record_pass_nanos(&mut self, nanos: u64);
    fn finish(self) -> ShardOutcome
    where
        Self: Sized;
}

impl MuxRingPass for MuxInsertionShardPass<'_> {
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        MuxInsertionShardPass::feed(self, deliveries);
    }
    fn record_pass_nanos(&mut self, nanos: u64) {
        MuxInsertionShardPass::record_pass_nanos(self, nanos);
    }
    fn finish(self) -> ShardOutcome {
        MuxInsertionShardPass::finish(self)
    }
}

impl MuxRingPass for MuxTurnstileShardPass<'_> {
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        MuxTurnstileShardPass::feed(self, deliveries);
    }
    fn record_pass_nanos(&mut self, nanos: u64) {
        MuxTurnstileShardPass::record_pass_nanos(self, nanos);
    }
    fn finish(self) -> ShardOutcome {
        MuxTurnstileShardPass::finish(self)
    }
}

/// Drive one shared pass over the broadcast ring: one producer, one
/// cursor per shard machine — threaded (blocking API, scoped threads)
/// when the policy says so, else a deterministic cooperative round-robin
/// on this thread. Identical answers either way. The ring is built with
/// a stall threshold; recorded producer stalls are appended to `stalls`
/// so the admission report can name the consumer a slow round was
/// blocked on.
fn drive_mux_ring<P: MuxRingPass>(
    feed: &ShardedFeed,
    passes: Vec<P>,
    bcast: BroadcastOpts,
    stalls: &mut Vec<StallEvent>,
) -> Vec<ShardOutcome> {
    let shards = passes.len();
    let ring = Broadcast::with_stall_threshold(bcast.ring_capacity, MUX_STALL_THRESHOLD);
    let shard_consumers: Vec<BroadcastConsumer> = (0..shards).map(|_| ring.subscribe()).collect();
    let producer = RoutedProducer::new(feed, bcast.ring_block);
    let outcomes = if bcast.policy.use_threads(shards.max(2)) {
        let ring_ref = &ring;
        std::thread::scope(|scope| {
            scope.spawn(move || producer.run(ring_ref));
            let handles: Vec<_> = passes
                .into_iter()
                .zip(shard_consumers)
                .enumerate()
                .map(|(sid, (mut pass, consumer))| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut scratch: Vec<ShardUpdate> = Vec::new();
                        for block in consumer {
                            crate::broadcast::filter_block(&block, sid, &mut scratch);
                            pass.feed(&scratch);
                        }
                        pass.record_pass_nanos(t0.elapsed().as_nanos() as u64);
                        pass.finish()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    } else {
        let mut producer = producer;
        let mut workers: Vec<(P, BroadcastConsumer, bool, u64)> = passes
            .into_iter()
            .zip(shard_consumers)
            .map(|(p, c)| (p, c, false, 0u64))
            .collect();
        let mut scratch: Vec<ShardUpdate> = Vec::new();
        loop {
            let produced = producer.pump(&ring);
            let mut all_ended = true;
            for (sid, (pass, c, ended, nanos)) in workers.iter_mut().enumerate() {
                let t0 = Instant::now();
                while !*ended {
                    match c.try_next() {
                        TryNext::Block(b) => {
                            crate::broadcast::filter_block(&b, sid, &mut scratch);
                            pass.feed(&scratch);
                        }
                        TryNext::Pending => break,
                        TryNext::Ended => *ended = true,
                    }
                }
                *nanos += t0.elapsed().as_nanos() as u64;
                all_ended &= *ended;
            }
            if produced && all_ended {
                break;
            }
        }
        workers
            .into_iter()
            .map(|(mut p, _, _, nanos)| {
                p.record_pass_nanos(nanos);
                p.finish()
            })
            .collect()
    };
    stalls.extend(ring.stall_events());
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::{run_insertion_sharded_with_exec, run_turnstile_sharded_with_exec};
    use crate::PassOpts;
    use sgs_graph::gen;
    use sgs_stream::{InsertionStream, TurnstileStream};

    /// A small round-adaptive fixture with data-dependent rounds: walks
    /// `depth` RandomNeighbor hops from a start vertex, asking a mixed
    /// batch each round, so different jobs genuinely have different
    /// round counts and query mixes.
    struct Walker {
        start: u32,
        depth: usize,
        round: usize,
        trace: Vec<Answer>,
    }

    impl Walker {
        fn new(start: u32, depth: usize) -> Self {
            Walker {
                start,
                depth,
                round: 0,
                trace: Vec::new(),
            }
        }
    }

    impl RoundAdaptive for Walker {
        type Output = Vec<Answer>;
        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            self.trace.extend_from_slice(answers);
            if self.round >= self.depth {
                return Vec::new();
            }
            self.round += 1;
            let v = VertexId(self.start.wrapping_add(self.round as u32) % 16);
            vec![
                Query::EdgeCount,
                Query::RandomEdge,
                Query::Degree(v),
                Query::RandomNeighbor(v),
                Query::RandomEdge,
                Query::Adjacent(v, VertexId((v.0 + 1) % 16)),
            ]
        }
        fn output(&mut self) -> Vec<Answer> {
            std::mem::take(&mut self.trace)
        }
    }

    fn solo_insertion(
        feed: &ShardedFeed,
        start: u32,
        depth: usize,
        seed: u64,
        mode: ReservoirMode,
        block: usize,
    ) -> Vec<Answer> {
        let mut arena = RouterArena::new();
        let opts = PassOpts::with_block(block).reservoir(mode);
        let (out, _) = run_insertion_sharded_with_exec(
            Walker::new(start, depth),
            feed,
            seed,
            &mut arena,
            opts,
            ExecPolicy::serial(),
        );
        out
    }

    #[test]
    fn mux_insertion_matches_solo_runs() {
        let g = gen::gnm(16, 48, 41);
        let ins = InsertionStream::from_graph(&g, 42);
        for shards in [1usize, 3] {
            let feed = ShardedFeed::partition(&ins, shards);
            for block in [0usize, 64] {
                let mut set = QuerySet::new();
                let specs = [
                    (0u32, 2usize, 100u64, ReservoirMode::Offer),
                    (5, 4, 200, ReservoirMode::Skip),
                    (9, 1, 300, ReservoirMode::Skip),
                ];
                for &(start, depth, seed, mode) in &specs {
                    set.admit(Walker::new(start, depth), seed, mode);
                }
                let mut arena = RouterArena::new();
                let out = set.run_insertion(
                    &feed,
                    &mut arena,
                    PassOpts::with_block(block),
                    ExecPolicy::serial(),
                );
                for (j, &(start, depth, seed, mode)) in specs.iter().enumerate() {
                    let solo = solo_insertion(&feed, start, depth, seed, mode, block);
                    assert_eq!(
                        out.outputs[j], solo,
                        "job {j}, {shards} shards, block {block}"
                    );
                    assert_eq!(out.reports[j].rounds, depth);
                    assert_eq!(out.reports[j].passes, depth);
                }
                assert_eq!(out.admission.rounds.len(), 4, "max depth over jobs");
                assert_eq!(out.admission.rounds[0].participants, vec![0, 1, 2]);
                assert_eq!(out.admission.rounds[3].participants, vec![1]);
            }
        }
    }

    #[test]
    fn mux_turnstile_matches_solo_runs() {
        let g = gen::gnm(16, 48, 43);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 44);
        let feed = ShardedFeed::partition(&tst, 2);
        let specs = [(1u32, 3usize, 500u64), (7, 2, 600)];
        let mut set = QuerySet::new();
        for &(start, depth, seed) in &specs {
            set.admit(Walker::new(start, depth), seed, ReservoirMode::Offer);
        }
        let mut arena = RouterArena::new();
        let out = set.run_turnstile(
            &feed,
            &mut arena,
            PassOpts::with_block(32),
            ExecPolicy::serial(),
        );
        for (j, &(start, depth, seed)) in specs.iter().enumerate() {
            let mut solo_arena = RouterArena::new();
            let (solo, _) = run_turnstile_sharded_with_exec(
                Walker::new(start, depth),
                &feed,
                seed,
                &mut solo_arena,
                PassOpts::with_block(32),
                ExecPolicy::serial(),
            );
            assert_eq!(out.outputs[j], solo, "job {j}");
        }
    }

    #[test]
    fn ring_engine_matches_sharded_engine() {
        let g = gen::gnm(16, 48, 45);
        let ins = InsertionStream::from_graph(&g, 46);
        let feed = ShardedFeed::partition(&ins, 3);
        let build = |two_jobs: bool| {
            let mut set = QuerySet::new();
            set.admit(Walker::new(2, 3), 700, ReservoirMode::Skip);
            if two_jobs {
                set.admit(Walker::new(11, 2), 800, ReservoirMode::Offer);
            }
            set
        };
        let mut arena = RouterArena::new();
        let sharded = build(true).run_insertion(
            &feed,
            &mut arena,
            PassOpts::with_block(16),
            ExecPolicy::serial(),
        );
        for policy in [ExecPolicy::serial(), ExecPolicy::threaded()] {
            let mut ring_arena = RouterArena::new();
            let ringed = build(true).run_insertion_broadcast(
                &feed,
                &mut ring_arena,
                PassOpts::with_block(16),
                BroadcastOpts::with_policy(policy),
            );
            assert_eq!(ringed.outputs, sharded.outputs, "{policy:?}");
        }
    }

    #[test]
    fn admission_report_names_the_long_job() {
        let g = gen::gnm(16, 48, 47);
        let ins = InsertionStream::from_graph(&g, 48);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut set = QuerySet::new();
        set.admit(Walker::new(0, 1), 900, ReservoirMode::Offer);
        let long = set.admit(Walker::new(3, 5), 901, ReservoirMode::Offer);
        let mut arena = RouterArena::new();
        let out = set.run_insertion(
            &feed,
            &mut arena,
            PassOpts::with_block(0),
            ExecPolicy::serial(),
        );
        assert_eq!(out.admission.slowest_job(), Some(long as u32));
        assert_eq!(out.admission.jobs[long].rounds, 5);
        assert_eq!(out.admission.jobs[0].rounds, 1);
        assert!(out.admission.jobs[long].pass_nanos >= out.admission.jobs[0].pass_nanos);
        assert_eq!(out.admission.jobs[long].f1_targets, 2 * 5);
        assert_eq!(out.admission.jobs[long].sampler_lanes, 5);
    }

    #[test]
    fn empty_query_set_is_fine() {
        let ins = InsertionStream::from_edge_order(4, vec![]);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let set: QuerySet<Walker> = QuerySet::new();
        let out = set.run_insertion(
            &feed,
            &mut arena,
            PassOpts::with_block(0),
            ExecPolicy::serial(),
        );
        assert!(out.outputs.is_empty());
        assert!(out.admission.rounds.is_empty());
        assert_eq!(feed.logical_passes(), 0);
    }

    #[test]
    fn shared_rounds_count_one_logical_pass_each() {
        let g = gen::gnm(16, 48, 49);
        let ins = InsertionStream::from_graph(&g, 50);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut set = QuerySet::new();
        for j in 0..10u64 {
            set.admit(Walker::new(j as u32, 3), 1000 + j, ReservoirMode::Skip);
        }
        let mut arena = RouterArena::new();
        let _ = set.run_insertion(
            &feed,
            &mut arena,
            PassOpts::with_block(64),
            ExecPolicy::serial(),
        );
        assert_eq!(
            feed.logical_passes(),
            3,
            "10 jobs × 3 rounds = 3 shared passes"
        );
    }
}
