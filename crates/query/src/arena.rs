//! The **RouterArena**: pooled per-shard routing state, built once and
//! reset per pass.
//!
//! At short streams the per-round router build (pair-index inserts,
//! pooled-slot vectors) rivals the feed cost itself (ROADMAP
//! "Indexed-pass build cost"). The arena kills the rebuild *allocation*
//! half of that bill: each shard owns one [`QueryRouter`] plus the
//! sub-batch / slot-map / answer scratch the sharded executors need, all
//! reused round over round via [`QueryRouter::rebuild`] and `Vec::clear`.
//! After a warm-up run every per-round *router* rebuild is
//! allocation-free, and the arena proves it with a growth counter:
//! [`RouterArena::heap_bytes`] is sampled after every round, and any
//! increase while the arena is warm increments
//! [`RouterArena::growth_events_after_warmup`] (asserted zero by the
//! `sharded_equivalence` suite). Scope: the counter covers the pooled
//! routing state (routers, sub-batches, slot maps, answer scratch,
//! driver scratch) — the executors' model-specific sampler state
//! (reservoirs, ℓ₀ banks) is deliberately rebuilt per pass, because each
//! pass seeds it afresh and its cost is dominated by sketch updates, not
//! allocation.
//!
//! The arena also records per-shard feed durations for each pass —
//! the measurement `benches/sharded.rs` uses to report critical-path
//! (max-shard) wall clock, i.e. the pass latency of a deployment with one
//! core per shard.

use crate::query::{Answer, Query};
use crate::router::QueryRouter;

/// Pooled state for one feed shard.
#[derive(Default)]
pub(crate) struct ShardSlot {
    /// This shard's slice of the round's batch (vertex/edge-keyed
    /// queries whose routing key hashes here).
    pub(crate) sub_batch: Vec<Query>,
    /// `sub_batch` index → global batch slot.
    pub(crate) slot_map: Vec<u32>,
    /// The shard-private router over `sub_batch`.
    pub(crate) router: QueryRouter,
    /// Shard-local answer scratch, scattered through `slot_map` at merge.
    pub(crate) answers: Vec<Answer>,
    /// Nanoseconds this shard spent feeding its buffer, per pass of the
    /// current run (cleared by [`RouterArena::begin_run`]).
    pub(crate) pass_nanos: Vec<u64>,
}

impl ShardSlot {
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sub_batch.capacity() * size_of::<Query>()
            + self.slot_map.capacity() * size_of::<u32>()
            + self.router.heap_bytes()
            + self.answers.capacity() * size_of::<Answer>()
            + self.pass_nanos.capacity() * size_of::<u64>()
    }
}

/// Reusable routing state for a sharded (or single-shard) executor run:
/// build once, reset per pass, reuse across runs.
#[derive(Default)]
pub struct RouterArena {
    pub(crate) slots: Vec<ShardSlot>,
    /// Driver-side pooled scratch: `EdgeCount` slots, `RandomEdge` slots,
    /// and the centrally drawn `f1` position targets of the current pass.
    pub(crate) scratch_count: Vec<u32>,
    pub(crate) scratch_edge: Vec<u32>,
    pub(crate) scratch_targets: Vec<(u64, u32)>,
    /// Peak heap footprint observed so far.
    high_water: usize,
    /// Set once a full run has completed through this arena.
    warm: bool,
    /// Rounds whose rebuild grew the heap while the arena was warm.
    growth_after_warm: usize,
}

impl RouterArena {
    /// A fresh, cold arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure `shards` slots exist (never shrinks — a pool keeps its
    /// warmed buffers).
    pub(crate) fn ensure_shards(&mut self, shards: usize) {
        if self.slots.len() < shards {
            self.slots.resize_with(shards, ShardSlot::default);
        }
    }

    /// Start a run: clears per-run telemetry, leaves pooled buffers (and
    /// warm-up state) intact.
    pub(crate) fn begin_run(&mut self) {
        for s in &mut self.slots {
            s.pass_nanos.clear();
        }
    }

    /// Note the end of one round: samples the heap footprint and counts
    /// a growth event if a warm arena grew.
    pub(crate) fn note_round(&mut self) {
        let bytes = self.heap_bytes();
        if bytes > self.high_water {
            if self.warm {
                self.growth_after_warm += 1;
            }
            self.high_water = bytes;
        }
    }

    /// Note the end of a full run: the arena is warm from here on, and
    /// any later per-round growth on a same-shaped workload is a pooling
    /// regression.
    pub(crate) fn end_run(&mut self) {
        self.warm = true;
    }

    /// Total bytes of backing storage across every pooled buffer.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.iter().map(ShardSlot::heap_bytes).sum::<usize>()
            + self.scratch_count.capacity() * size_of::<u32>()
            + self.scratch_edge.capacity() * size_of::<u32>()
            + self.scratch_targets.capacity() * size_of::<(u64, u32)>()
    }

    /// Whether a full run has completed through this arena.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Rounds that grew the heap after the arena was warm. Zero for
    /// repeated same-shaped workloads — the debug counter behind the
    /// arena's no-per-round-allocation claim. (Growing is *legal* when a
    /// warm arena meets a genuinely bigger workload; the equivalence
    /// suite asserts zero for repeat runs.)
    pub fn growth_events_after_warmup(&self) -> usize {
        self.growth_after_warm
    }

    /// Per-shard feed nanoseconds of the most recent run, one inner
    /// vector per shard, one entry per pass. The critical-path wall
    /// clock of a one-core-per-shard deployment is
    /// `Σ_pass max_shard nanos[shard][pass]`; `benches/sharded.rs`
    /// reports exactly that.
    pub fn shard_pass_nanos(&self) -> Vec<Vec<u64>> {
        self.slots.iter().map(|s| s.pass_nanos.clone()).collect()
    }

    /// Drain the recorded per-shard pass durations, resetting them —
    /// what `benches/sharded.rs` calls between its warm-up and timed
    /// phases so critical-path numbers cover only timed iterations.
    pub fn take_shard_pass_nanos(&mut self) -> Vec<Vec<u64>> {
        self.slots
            .iter_mut()
            .map(|s| std::mem::take(&mut s.pass_nanos))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterMode;
    use sgs_graph::VertexId;

    #[test]
    fn arena_tracks_growth_only_after_warmup() {
        let mut arena = RouterArena::new();
        arena.ensure_shards(2);
        let batch: Vec<Query> = (0..50u32).map(|i| Query::Degree(VertexId(i))).collect();

        // Cold run: growth is expected and not counted.
        arena.begin_run();
        arena.slots[0].router.rebuild(&batch, RouterMode::Insertion);
        arena.note_round();
        arena.end_run();
        assert!(arena.is_warm());
        assert_eq!(arena.growth_events_after_warmup(), 0);
        let warmed = arena.heap_bytes();

        // Warm run, same shape: no growth events.
        arena.begin_run();
        arena.slots[0].router.rebuild(&batch, RouterMode::Insertion);
        arena.note_round();
        arena.end_run();
        assert_eq!(arena.growth_events_after_warmup(), 0);
        assert_eq!(arena.heap_bytes(), warmed);

        // Warm run, much bigger shape: growth is counted.
        let big: Vec<Query> = (0..5000u32).map(|i| Query::Degree(VertexId(i))).collect();
        arena.begin_run();
        arena.slots[0].router.rebuild(&big, RouterMode::Insertion);
        arena.note_round();
        assert_eq!(arena.growth_events_after_warmup(), 1);
    }

    #[test]
    fn ensure_shards_never_shrinks() {
        let mut arena = RouterArena::new();
        arena.ensure_shards(4);
        arena.slots[3].sub_batch.reserve(100);
        let bytes = arena.heap_bytes();
        arena.ensure_shards(2);
        assert_eq!(arena.slots.len(), 4);
        assert_eq!(arena.heap_bytes(), bytes);
    }
}
