//! Queries and answers of the (relaxed) augmented general graph model.
//!
//! Definition 6 allows four query types; Definition 10 relaxes `f1` and
//! `f3` to *approximately* uniform sampling with a failure probability.
//! The vocabulary below covers both models:
//!
//! | type | query                        | models                       |
//! |------|------------------------------|------------------------------|
//! | `f1` | [`Query::RandomEdge`]        | both (relaxed: may fail)     |
//! | `f2` | [`Query::Degree`]            | both                         |
//! | `f3` | [`Query::IthNeighbor`]       | augmented general model only |
//! | `f3'`| [`Query::RandomNeighbor`]    | relaxed model (may fail)     |
//! | `f4` | [`Query::Adjacent`]          | both                         |
//!
//! `IthNeighbor` indices are 1-based as in the paper (`i ∈ [dg(v)]`).
//! Random edges are returned *undirected*; algorithms that need a random
//! orientation (the FGP piece samplers) flip their own coin, which keeps
//! every bit of algorithm randomness inside the algorithm state machine —
//! a requirement for the executor-equivalence tests.

use sgs_graph::{Edge, VertexId};

/// A single query to the graph oracle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Query {
    /// The number of edges `m`.
    ///
    /// Not one of Definition 6's four types: the FGP algorithm *receives*
    /// `m` as an input (Lemma 15), and its streaming counterpart counts
    /// `m` during its first pass (Algorithm 1, line 7). Modeling "learn m"
    /// as a query keeps that bookkeeping inside the round/pass framework:
    /// the oracle reads it off the graph, and both streaming executors
    /// answer it with an 8-byte counter.
    EdgeCount,
    /// `f1`: a uniformly random edge of `E`.
    RandomEdge,
    /// `f2`: the degree of a vertex.
    Degree(VertexId),
    /// `f3` (exact form): the `i`-th neighbor of `v`, 1-based.
    IthNeighbor(VertexId, u64),
    /// `f3` (relaxed form): an approximately uniform neighbor of `v`.
    RandomNeighbor(VertexId),
    /// `f4`: whether `{u, v} ∈ E`.
    Adjacent(VertexId, VertexId),
}

/// The oracle's answer to one [`Query`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// Answer to [`Query::EdgeCount`].
    EdgeCount(usize),
    /// Answer to [`Query::RandomEdge`]; `None` means the query failed
    /// (possible in the relaxed model / turnstile emulation, or `E = ∅`).
    Edge(Option<Edge>),
    /// Answer to [`Query::Degree`].
    Degree(usize),
    /// Answer to [`Query::IthNeighbor`] / [`Query::RandomNeighbor`];
    /// `None` when `i > dg(v)`, the vertex is isolated, or the relaxed
    /// query failed.
    Neighbor(Option<VertexId>),
    /// Answer to [`Query::Adjacent`].
    Adjacent(bool),
}

impl Answer {
    /// Extract an edge-count answer; panics on type confusion (which
    /// indicates an algorithm/executor protocol bug, never user error).
    pub fn expect_edge_count(&self) -> usize {
        match self {
            Answer::EdgeCount(m) => *m,
            other => panic!("expected EdgeCount answer, got {other:?}"),
        }
    }

    /// Extract an edge answer.
    pub fn expect_edge(&self) -> Option<Edge> {
        match self {
            Answer::Edge(e) => *e,
            other => panic!("expected Edge answer, got {other:?}"),
        }
    }

    /// Extract a degree answer.
    pub fn expect_degree(&self) -> usize {
        match self {
            Answer::Degree(d) => *d,
            other => panic!("expected Degree answer, got {other:?}"),
        }
    }

    /// Extract a neighbor answer.
    pub fn expect_neighbor(&self) -> Option<VertexId> {
        match self {
            Answer::Neighbor(n) => *n,
            other => panic!("expected Neighbor answer, got {other:?}"),
        }
    }

    /// Extract an adjacency answer.
    pub fn expect_adjacent(&self) -> bool {
        match self {
            Answer::Adjacent(b) => *b,
            other => panic!("expected Adjacent answer, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractors_roundtrip() {
        let e = Edge::new(VertexId(1), VertexId(2));
        assert_eq!(Answer::Edge(Some(e)).expect_edge(), Some(e));
        assert_eq!(Answer::Degree(4).expect_degree(), 4);
        assert_eq!(
            Answer::Neighbor(Some(VertexId(3))).expect_neighbor(),
            Some(VertexId(3))
        );
        assert!(Answer::Adjacent(true).expect_adjacent());
    }

    #[test]
    #[should_panic(expected = "expected Edge")]
    fn extractor_type_confusion_panics() {
        let _ = Answer::Degree(1).expect_edge();
    }
}
