//! The serving node: continuous ingest + durable state behind `sgs serve`.
//!
//! Everything before this module runs as a batch — build a feed, run
//! passes, print one answer, exit. [`ServerNode`] is the long-lived
//! composition of the same pieces:
//!
//! * a **continuously-fed broadcast ring** in
//!   [`sgs_stream::Broadcast::open_ingest`] mode: ingest never seals the
//!   consumer set, so query sessions can subscribe at any time and join
//!   at a block boundary;
//! * the **WAL** ([`sgs_stream::persist::WalWriter`]) written block by
//!   block as updates arrive — the node's durable history, reopened
//!   (not recreated) across restarts so the block sequence is one
//!   unbroken log;
//! * periodic **snapshots** checkpointing the ring's resident consumer
//!   cursor and the serving counters, published through the same
//!   `MANIFEST` protocol the batch checkpoints use.
//!
//! Answers stay **byte-identical** to batch runs: a query cuts the
//! ingested history at a block boundary, rebuilds the exact
//! [`ShardedFeed`] that `sgs count` would build over the same prefix
//! (same routing, same positions), and runs the same deterministic
//! passes. A kill -9 loses at most the un-flushed partial block; restart
//! rebuilds the ring at the WAL's block count
//! ([`sgs_stream::Broadcast::open_ingest_at`]) so checkpointed cursors
//! stay meaningful, and every answer over the recovered prefix matches
//! the pre-crash node bit for bit.

use crate::policy::ExecPolicy;
use crate::runtime::ShardRuntime;
use sgs_graph::{Edge, VertexId};
use sgs_stream::broadcast::DEFAULT_RING_CAPACITY;
use sgs_stream::persist::{
    fsync_dir, publish_snapshot, read_latest_snapshot, write_config, Decoder, Encoder,
    PersistError, PersistResult, WalWriter, DEFAULT_SEGMENT_BYTES,
};
use sgs_stream::sharded::{RoutedUpdate, ShardMap, ShardedFeed};
use sgs_stream::update::EdgeUpdate;
use sgs_stream::{Broadcast, BroadcastConsumer, TryNext};
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Default updates per WAL block / ring block for a serving node — the
/// durability granularity: a kill -9 loses at most this many un-flushed
/// updates (they were never acknowledged as durable).
pub const DEFAULT_SERVE_BLOCK: usize = 256;

/// Leading tag byte of a serve-mode CONFIG blob, distinct from the batch
/// CLI's model bytes (0 = insertion, 1 = turnstile) so `sgs recover` can
/// tell a serve directory from a batch checkpoint.
pub const SERVE_CONFIG_TAG: u8 = 2;

/// Geometry + identity of a serving node, persisted in the directory's
/// CONFIG blob so a restart (or `sgs recover`) rebuilds the same node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Shard count every feed cut is routed for.
    pub shards: usize,
    /// Updates per WAL/ring block (the durability granularity).
    pub wal_block: usize,
    /// Snapshot cadence in flushed blocks.
    pub snapshot_every: u64,
    /// Broadcast ring capacity in blocks.
    pub ring_capacity: usize,
    /// WAL segment roll threshold in bytes.
    pub segment_bytes: usize,
    /// Default seed for COUNT queries that do not pass their own.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            wal_block: DEFAULT_SERVE_BLOCK,
            snapshot_every: 8,
            ring_capacity: DEFAULT_RING_CAPACITY,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            seed: 1,
        }
    }
}

/// Encode a [`ServeConfig`] as the CONFIG blob payload.
pub fn encode_serve_config(cfg: &ServeConfig) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(SERVE_CONFIG_TAG);
    enc.u64(cfg.shards as u64);
    enc.u64(cfg.wal_block as u64);
    enc.u64(cfg.snapshot_every);
    enc.u64(cfg.ring_capacity as u64);
    enc.u64(cfg.segment_bytes as u64);
    enc.u64(cfg.seed);
    enc.into_bytes()
}

/// Decode a serve-mode CONFIG blob (the inverse of
/// [`encode_serve_config`]); rejects blobs that are not serve-tagged.
pub fn decode_serve_config(payload: &[u8]) -> PersistResult<ServeConfig> {
    let mut dec = Decoder::new(payload);
    let tag = dec.u8("config tag")?;
    if tag != SERVE_CONFIG_TAG {
        return Err(dec.corrupt(format!(
            "CONFIG tag {tag} is not a serve node (expected {SERVE_CONFIG_TAG})"
        )));
    }
    let shards = dec.u64("shards")? as usize;
    let wal_block = dec.u64("wal_block")? as usize;
    let snapshot_every = dec.u64("snapshot_every")?;
    let ring_capacity = dec.u64("ring_capacity")? as usize;
    let segment_bytes = dec.u64("segment_bytes")? as usize;
    let seed = dec.u64("seed")?;
    dec.finish()?;
    if shards == 0 || shards > u16::MAX as usize {
        return Err(PersistError::corrupt(
            0,
            format!("implausible shard count {shards}"),
        ));
    }
    if wal_block == 0 || ring_capacity == 0 {
        return Err(PersistError::corrupt(
            0,
            "zero wal_block / ring_capacity in serve CONFIG",
        ));
    }
    Ok(ServeConfig {
        shards,
        wal_block,
        snapshot_every,
        ring_capacity,
        segment_bytes,
        seed,
    })
}

/// What a serve snapshot records: the WAL position, the resident ring
/// cursor (the checkpointed consumer state), and the serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Updates flushed to the WAL.
    pub updates: u64,
    /// Blocks flushed to the WAL (== ring blocks published).
    pub blocks: u64,
    /// The resident consumer's ring cursor (blocks consumed). Equal to
    /// `blocks` at every snapshot point — the node drains its own ring
    /// tail on flush — and proven so on restore.
    pub cursor_blocks: u64,
    /// Updates the resident cursor has consumed since the ring was
    /// (re)built. Resets with the ring on restart; `updates` is the
    /// whole-history count.
    pub cursor_updates: u64,
    /// COUNT queries answered over the node's lifetime.
    pub served: u64,
    /// Snapshots published over the node's lifetime (including this one).
    pub snapshots: u64,
    /// Deletions ingested (> 0 forces the turnstile model).
    pub deletions: u64,
    /// Vertex bound: max endpoint + 1 over the ingested history.
    pub num_vertices: u64,
}

fn encode_serve_snapshot(s: &ServeSnapshot) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(1); // serve snapshot layout version
    enc.u64(s.updates);
    enc.u64(s.blocks);
    enc.u64(s.cursor_blocks);
    enc.u64(s.cursor_updates);
    enc.u64(s.served);
    enc.u64(s.snapshots);
    enc.u64(s.deletions);
    enc.u64(s.num_vertices);
    enc.into_bytes()
}

fn decode_serve_snapshot(payload: &[u8]) -> PersistResult<ServeSnapshot> {
    let mut dec = Decoder::new(payload);
    let ver = dec.u8("serve snapshot version")?;
    if ver != 1 {
        return Err(dec.corrupt(format!("unknown serve snapshot layout {ver}")));
    }
    let s = ServeSnapshot {
        updates: dec.u64("updates")?,
        blocks: dec.u64("blocks")?,
        cursor_blocks: dec.u64("cursor_blocks")?,
        cursor_updates: dec.u64("cursor_updates")?,
        served: dec.u64("served")?,
        snapshots: dec.u64("snapshots")?,
        deletions: dec.u64("deletions")?,
        num_vertices: dec.u64("num_vertices")?,
    };
    dec.finish()?;
    Ok(s)
}

/// Read a serve directory's latest snapshot, if any — the recovery-side
/// counterpart of the node's periodic checkpoints.
pub fn read_serve_snapshot(dir: &Path) -> PersistResult<Option<(u64, ServeSnapshot)>> {
    match read_latest_snapshot(dir)? {
        None => Ok(None),
        Some((seq, payload)) => {
            let snap = decode_serve_snapshot(&payload)
                .map_err(|e| e.located(dir.join(format!("snap-{seq:08}.bin"))))?;
            Ok(Some((seq, snap)))
        }
    }
}

/// Errors a serving node reports per request: durability failures
/// (fatal) vs. stream-invariant rejections (the client's problem; the
/// connection and the node continue).
#[derive(Debug)]
pub enum ServeError {
    /// A durability-layer failure.
    Persist(PersistError),
    /// The update violates the strict turnstile contract (self-loop,
    /// non-±1 delta, duplicate insert, absent delete).
    Reject(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "{e}"),
            ServeError::Reject(m) => write!(f, "{m}"),
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

/// A point-in-time view of the node for the STAT reply.
#[derive(Clone, Copy, Debug)]
pub struct ServeStats {
    /// Updates flushed to the WAL (durable).
    pub updates: u64,
    /// Blocks flushed to the WAL.
    pub blocks: u64,
    /// Ingested updates not yet flushed (lost on kill -9).
    pub pending: usize,
    /// Vertex bound over the ingested history.
    pub num_vertices: usize,
    /// Live edges (inserts minus deletes).
    pub edges: usize,
    /// Deletions ingested.
    pub deletions: u64,
    /// Ring blocks published since the ring was (re)built.
    pub ring_produced: u64,
    /// Resident cursor position (blocks consumed).
    pub ring_consumed: u64,
    /// COUNT queries answered over the node's lifetime.
    pub served: u64,
    /// Snapshots published over the node's lifetime.
    pub snapshots: u64,
    /// Shard count of every feed cut.
    pub shards: usize,
}

/// The long-lived serving node: continuous WAL-backed ingest through an
/// open broadcast ring, a persistent [`ShardRuntime`] worker pool, and
/// periodic cursor checkpoints. See the module docs for the layout.
pub struct ServerNode {
    dir: PathBuf,
    cfg: ServeConfig,
    map: ShardMap,
    wal: WalWriter,
    ring: Broadcast,
    /// The node's resident ring consumer: its cursor is the checkpointed
    /// "ring consumer cursor", drained at every flush.
    tail: BroadcastConsumer,
    /// Every flushed routed update, in order — the in-memory mirror of
    /// the WAL that feed cuts are built from.
    history: Vec<RoutedUpdate>,
    /// Ingested but not yet flushed updates (under one block).
    pending: Vec<RoutedUpdate>,
    /// Live edge keys, for strict-turnstile admission.
    live: HashSet<u64>,
    num_vertices: usize,
    deletions: u64,
    served: u64,
    snapshots: u64,
    last_snapshot_block: u64,
    truncation: Option<String>,
    recovered_blocks: u64,
    runtime: ShardRuntime,
}

impl ServerNode {
    /// Stand up a fresh node in `dir` (created if needed; any previous
    /// run's files are cleared) and persist its CONFIG.
    pub fn create(dir: &Path, cfg: ServeConfig, policy: ExecPolicy) -> PersistResult<Self> {
        let wal = WalWriter::create(dir, cfg.segment_bytes)?;
        write_config(dir, &encode_serve_config(&cfg))?;
        let ring = Broadcast::open_ingest(cfg.ring_capacity);
        let tail = ring.subscribe();
        Ok(ServerNode {
            dir: dir.to_path_buf(),
            cfg,
            map: ShardMap::uniform(cfg.shards),
            wal,
            ring,
            tail,
            history: Vec::new(),
            pending: Vec::new(),
            live: HashSet::new(),
            num_vertices: 0,
            deletions: 0,
            served: 0,
            snapshots: 0,
            last_snapshot_block: 0,
            truncation: None,
            recovered_blocks: 0,
            runtime: ShardRuntime::new(cfg.shards, policy),
        })
    }

    /// Reopen a node from `dir`'s WAL — the restart path, graceful or
    /// not. Replays every intact block (re-validating the strict
    /// turnstile invariants), truncates any torn tail in place, restores
    /// the lifetime counters from the latest snapshot, and rebuilds the
    /// ring at the WAL's block count so the checkpointed consumer
    /// cursors resume exactly where they left off.
    pub fn resume(dir: &Path, cfg: ServeConfig, policy: ExecPolicy) -> PersistResult<Self> {
        let (wal, recovered) = WalWriter::reopen(dir, cfg.segment_bytes)?;
        if let Some(meta) = &recovered.meta {
            if meta.num_shards != cfg.shards as u64 {
                return Err(PersistError::corrupt(
                    0,
                    format!(
                        "WAL sealed for {} shards, node configured for {}",
                        meta.num_shards, cfg.shards
                    ),
                ));
            }
        }
        let map = ShardMap::uniform(cfg.shards);
        let mut history = Vec::new();
        let mut live = HashSet::new();
        let mut num_vertices = 0usize;
        let mut deletions = 0u64;
        let blocks = recovered.blocks.len() as u64;
        for (bi, block) in recovered.blocks.into_iter().enumerate() {
            for r in block {
                let (u, v) = r.update.edge.endpoints();
                if map.shard_of(u.0) != r.owner as usize || map.shard_of(v.0) != r.other as usize {
                    return Err(PersistError::corrupt(
                        bi as u64,
                        format!("block {bi} routed for a different placement"),
                    ));
                }
                if r.position as usize != history.len() {
                    return Err(PersistError::corrupt(
                        bi as u64,
                        format!(
                            "block {bi} update carries position {}, expected {}",
                            r.position,
                            history.len()
                        ),
                    ));
                }
                let key = r.update.edge.key();
                let ok = if r.update.delta > 0 {
                    live.insert(key)
                } else {
                    deletions += 1;
                    live.remove(&key)
                };
                if !ok {
                    return Err(PersistError::corrupt(
                        bi as u64,
                        format!("block {bi} breaks the strict turnstile invariant"),
                    ));
                }
                num_vertices = num_vertices.max(v.0 as usize + 1);
                history.push(r);
            }
        }
        let mut served = 0;
        let mut snapshots = 0;
        if let Some((_, snap)) = read_serve_snapshot(dir)? {
            if snap.blocks > blocks {
                return Err(PersistError::corrupt(
                    0,
                    format!(
                        "snapshot claims {} blocks but only {blocks} survive in the WAL",
                        snap.blocks
                    ),
                ));
            }
            served = snap.served;
            snapshots = snap.snapshots;
        }
        // The ring resumes the WAL's sequence numbering: the next block
        // flushed publishes as sequence `blocks`, and the resident tail
        // re-subscribes at exactly its checkpointed cursor.
        let ring = Broadcast::open_ingest_at(cfg.ring_capacity, blocks);
        let tail = ring.subscribe();
        Ok(ServerNode {
            dir: dir.to_path_buf(),
            cfg,
            map,
            wal,
            ring,
            tail,
            history,
            pending: Vec::new(),
            live,
            num_vertices,
            deletions,
            served,
            snapshots,
            last_snapshot_block: blocks,
            truncation: recovered.truncation,
            recovered_blocks: blocks,
            runtime: ShardRuntime::new(cfg.shards, policy),
        })
    }

    /// [`ServerNode::resume`] when the directory holds a WAL, otherwise
    /// [`ServerNode::create`].
    pub fn open(dir: &Path, cfg: ServeConfig, policy: ExecPolicy) -> PersistResult<Self> {
        let has_wal = dir.is_dir()
            && std::fs::read_dir(dir)
                .map_err(|e| PersistError::io(dir, e))?
                .filter_map(|e| e.ok())
                .any(|e| {
                    let n = e.file_name().to_string_lossy().into_owned();
                    n.starts_with("wal-") && n.ends_with(".seg")
                });
        if has_wal {
            Self::resume(dir, cfg, policy)
        } else {
            Self::create(dir, cfg, policy)
        }
    }

    /// Ingest one edge update. Routes it exactly as
    /// [`ShardedFeed::partition_with_map`] would (same owner/other, same
    /// position), so every later feed cut is field-identical to a batch
    /// partition of the same update sequence. Flushes a full WAL/ring
    /// block automatically. Returns the update's stream position.
    pub fn ingest(&mut self, u: u32, v: u32, delta: i8) -> Result<u64, ServeError> {
        if u == v {
            return Err(ServeError::Reject(format!("self-loop on vertex {u}")));
        }
        if delta != 1 && delta != -1 {
            return Err(ServeError::Reject(format!(
                "delta {delta} outside the strict turnstile (must be +1/-1)"
            )));
        }
        let edge = Edge::new(VertexId(u), VertexId(v));
        let key = edge.key();
        if delta > 0 && self.live.contains(&key) {
            return Err(ServeError::Reject(format!("edge {u} {v} already present")));
        }
        if delta < 0 && !self.live.contains(&key) {
            return Err(ServeError::Reject(format!("edge {u} {v} not present")));
        }
        let position = self.history.len() + self.pending.len();
        if position >= u32::MAX as usize {
            return Err(ServeError::Reject(
                "stream positions are stored as u32".into(),
            ));
        }
        let (lo, hi) = edge.endpoints();
        self.pending.push(RoutedUpdate {
            position: position as u32,
            owner: self.map.shard_of(lo.0) as u16,
            other: self.map.shard_of(hi.0) as u16,
            update: EdgeUpdate { edge, delta },
        });
        if delta > 0 {
            self.live.insert(key);
        } else {
            self.live.remove(&key);
            self.deletions += 1;
        }
        self.num_vertices = self.num_vertices.max(hi.0 as usize + 1);
        if self.pending.len() >= self.cfg.wal_block {
            self.flush_block()?;
        }
        Ok(position as u64)
    }

    /// Flush the pending updates as one WAL block + ring block, drain
    /// the resident cursor, and auto-snapshot on cadence. No-op when
    /// nothing is pending.
    pub fn flush_block(&mut self) -> PersistResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let block = std::mem::take(&mut self.pending);
        self.wal.append_block(&block)?;
        self.ring.push(&block);
        self.history.extend_from_slice(&block);
        self.drain_tail();
        if self.wal.blocks() - self.last_snapshot_block >= self.cfg.snapshot_every {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Advance the resident cursor past every published block. The node
    /// flushes and drains in the same thread, so this always catches up
    /// to the producer — the resident cursor never stalls ingest.
    fn drain_tail(&mut self) {
        while let TryNext::Block(_) = self.tail.try_next() {}
    }

    /// Cut the stream for a query: flush any partial block (a cut is a
    /// block boundary covering *every* acknowledged update) and rebuild
    /// the exact [`ShardedFeed`] a batch partition of the same prefix
    /// would produce.
    pub fn cut(&mut self) -> PersistResult<ShardedFeed> {
        self.flush_block()?;
        ShardedFeed::from_routed_with_map(
            self.num_vertices.max(1),
            self.map.clone(),
            self.history.clone(),
        )
    }

    /// Publish a snapshot now: WAL position, resident ring cursor, and
    /// lifetime counters, swung through `MANIFEST` atomically.
    pub fn snapshot(&mut self) -> PersistResult<ServeSnapshot> {
        self.drain_tail();
        self.snapshots += 1;
        let snap = ServeSnapshot {
            updates: self.wal.updates(),
            blocks: self.wal.blocks(),
            cursor_blocks: self.tail.blocks_consumed(),
            cursor_updates: self.tail.updates_consumed(),
            served: self.served,
            snapshots: self.snapshots,
            deletions: self.deletions,
            num_vertices: self.num_vertices as u64,
        };
        publish_snapshot(&self.dir, snap.blocks, &encode_serve_snapshot(&snap))?;
        self.last_snapshot_block = snap.blocks;
        Ok(snap)
    }

    /// Graceful shutdown: flush the partial block, finish + drain the
    /// ring, publish a final snapshot, seal the WAL (whole-history
    /// totals + placement), and fsync the directory. The sealed
    /// directory recovers through `sgs recover` and reopens with
    /// [`ServerNode::resume`] (the seal is stripped for new ingest).
    pub fn shutdown(mut self) -> PersistResult<ServeSnapshot> {
        self.flush_block()?;
        self.ring.finish();
        loop {
            match self.tail.try_next() {
                TryNext::Block(_) => {}
                TryNext::Ended => break,
                TryNext::Pending => std::thread::yield_now(),
            }
        }
        let snap = self.snapshot()?;
        let ServerNode {
            dir,
            cfg,
            map,
            wal,
            runtime,
            num_vertices,
            ..
        } = self;
        wal.seal_with_map(num_vertices.max(1), &map, cfg.wal_block)?;
        fsync_dir(&dir)?;
        drop(runtime); // joins the worker pool
        Ok(snap)
    }

    /// Record one served COUNT (reported by STAT and checkpointed).
    pub fn note_served(&mut self) {
        self.served += 1;
    }

    /// Current stats for the STAT reply.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            updates: self.wal.updates(),
            blocks: self.wal.blocks(),
            pending: self.pending.len(),
            num_vertices: self.num_vertices,
            edges: self.live.len(),
            deletions: self.deletions,
            ring_produced: self.ring.produced_blocks(),
            ring_consumed: self.tail.blocks_consumed(),
            served: self.served,
            snapshots: self.snapshots,
            shards: self.cfg.shards,
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &ServeConfig {
        self.cfg()
    }

    fn cfg(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Whether any deletion was ingested (insertion-model COUNTs are
    /// invalid once true).
    pub fn has_deletions(&self) -> bool {
        self.deletions > 0
    }

    /// Updates ingested (flushed + pending).
    pub fn ingested(&self) -> u64 {
        self.wal.updates() + self.pending.len() as u64
    }

    /// Live edge count.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }

    /// Blocks replayed from the WAL at resume time (0 for a fresh node).
    pub fn recovered_blocks(&self) -> u64 {
        self.recovered_blocks
    }

    /// The torn-tail truncation report from resume, if any.
    pub fn truncation(&self) -> Option<&str> {
        self.truncation.as_deref()
    }

    /// The persistent worker pool for solo COUNT passes.
    pub fn runtime_mut(&mut self) -> &mut ShardRuntime {
        &mut self.runtime
    }

    /// The open-ingest ring (e.g. to subscribe a session-side consumer).
    pub fn ring(&self) -> &Broadcast {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_stream::source::TurnstileStream;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgs_serve_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A deterministic little strict-turnstile update script.
    fn script(n: u32, len: usize) -> Vec<(u32, u32, i8)> {
        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut out = Vec::new();
        let mut x = 9u64;
        while out.len() < len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % n;
            let v = (x >> 13) as u32 % n;
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            if let Some(i) = live.iter().position(|&e| e == (a, b)) {
                if x.is_multiple_of(3) {
                    live.swap_remove(i);
                    out.push((a, b, -1));
                }
            } else {
                live.push((a, b));
                out.push((a, b, 1));
            }
        }
        out
    }

    fn node(dir: &Path, shards: usize, wal_block: usize) -> ServerNode {
        let cfg = ServeConfig {
            shards,
            wal_block,
            ..ServeConfig::default()
        };
        ServerNode::create(dir, cfg, ExecPolicy::serial()).unwrap()
    }

    #[test]
    fn serve_config_round_trips() {
        let cfg = ServeConfig {
            shards: 4,
            wal_block: 32,
            snapshot_every: 2,
            ring_capacity: 16,
            segment_bytes: 4096,
            seed: 77,
        };
        assert_eq!(
            decode_serve_config(&encode_serve_config(&cfg)).unwrap(),
            cfg
        );
        // A batch CLI config (model byte 0/1) is rejected loudly.
        assert!(decode_serve_config(&[0u8, 1, 2, 3]).is_err());
    }

    #[test]
    fn cut_feed_matches_batch_partition_at_every_shard_count() {
        let updates = script(24, 120);
        for shards in [1usize, 2, 4] {
            let dir = tmp(&format!("cut_{shards}"));
            let mut node = node(&dir, shards, 16);
            for &(u, v, d) in &updates {
                node.ingest(u, v, d).unwrap();
            }
            let feed = node.cut().unwrap();
            // The batch counterpart: the same updates in raw order.
            let n = node.num_vertices;
            let stream = TurnstileStream::from_updates(
                n,
                updates
                    .iter()
                    .map(|&(u, v, d)| EdgeUpdate {
                        edge: Edge::new(VertexId(u), VertexId(v)),
                        delta: d,
                    })
                    .collect(),
            );
            let batch = ShardedFeed::partition(&stream, shards);
            assert_eq!(feed.routed(), batch.routed(), "{shards} shards");
            assert_eq!(feed.num_vertices(), batch.num_vertices());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn ingest_rejects_invariant_breakers_without_state_damage() {
        let dir = tmp("rejects");
        let mut node = node(&dir, 2, 8);
        node.ingest(0, 1, 1).unwrap();
        assert!(matches!(node.ingest(3, 3, 1), Err(ServeError::Reject(_))));
        assert!(matches!(node.ingest(0, 1, 1), Err(ServeError::Reject(_))));
        assert!(matches!(node.ingest(0, 2, -1), Err(ServeError::Reject(_))));
        assert!(matches!(node.ingest(0, 1, 2), Err(ServeError::Reject(_))));
        node.ingest(1, 0, -1).unwrap(); // normalized endpoints still match
        assert_eq!(node.ingested(), 2);
        assert_eq!(node.live_edges(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_resume_recovers_flushed_prefix_and_ring_cursor() {
        let dir = tmp("kill");
        let updates = script(20, 100);
        let cfg = ServeConfig {
            shards: 2,
            wal_block: 16,
            snapshot_every: 2,
            ..ServeConfig::default()
        };
        let mut a = ServerNode::create(&dir, cfg, ExecPolicy::serial()).unwrap();
        for &(u, v, d) in &updates[..90] {
            a.ingest(u, v, d).unwrap();
        }
        let flushed = a.stats().updates; // 80: five full blocks, 10 pending
        assert_eq!(flushed, 80);
        let pre_cut: Vec<RoutedUpdate> = a.history[..flushed as usize].to_vec();
        drop(a); // kill -9: no shutdown, pending updates lost
        let mut b = ServerNode::resume(&dir, cfg, ExecPolicy::serial()).unwrap();
        assert_eq!(b.stats().updates, flushed, "flushed prefix survives");
        assert_eq!(b.recovered_blocks(), 5);
        assert_eq!(b.history, pre_cut, "byte-identical routed history");
        assert_eq!(b.stats().ring_produced, 5, "ring resumes the sequence");
        assert_eq!(b.stats().ring_consumed, 5, "cursor resumes checkpointed");
        // Ingest continues; positions carry on from the recovered prefix.
        let pos = b.ingest(100, 101, 1).unwrap();
        assert_eq!(pos, flushed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_shutdown_seals_and_resume_continues() {
        let dir = tmp("graceful");
        let updates = script(20, 50);
        let cfg = ServeConfig {
            shards: 1,
            wal_block: 8,
            ..ServeConfig::default()
        };
        let mut a = ServerNode::create(&dir, cfg, ExecPolicy::serial()).unwrap();
        for &(u, v, d) in &updates {
            a.ingest(u, v, d).unwrap();
        }
        a.note_served();
        let snap = a.shutdown().unwrap();
        assert_eq!(snap.updates, 50, "partial block flushed at shutdown");
        assert_eq!(snap.cursor_blocks, snap.blocks, "cursor fully drained");
        assert_eq!(snap.served, 1);
        // The sealed WAL is a consistent batch checkpoint...
        let rec = sgs_stream::persist::read_wal(&dir).unwrap();
        assert!(rec.meta.is_some());
        // ...and the node reopens for more ingest, counters intact.
        let mut b = ServerNode::resume(&dir, cfg, ExecPolicy::serial()).unwrap();
        assert_eq!(b.stats().updates, 50);
        assert_eq!(b.stats().served, 1, "lifetime counter restored");
        b.ingest(100, 101, 1).unwrap();
        let snap2 = b.shutdown().unwrap();
        assert_eq!(snap2.updates, 51);
        std::fs::remove_dir_all(&dir).ok();
    }
}
