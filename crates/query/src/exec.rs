//! The three executors: query-access, insertion-only streaming
//! (Theorem 9), and turnstile streaming (Theorem 11).
//!
//! All three drive the *same* [`RoundAdaptive`] state machine; they differ
//! only in how each round's query batch is answered:
//!
//! * [`run_on_oracle`] forwards queries to a [`GraphOracle`];
//! * [`run_insertion`] answers each batch with **one pass**: uniform
//!   position sampling for `f1` (distributionally identical to a size-1
//!   reservoir over a fixed-length pass, but O(1) per update), per-vertex
//!   incident-edge reservoirs for relaxed `f3` (exactly uniform in a
//!   simple graph), arrival-order watchers for indexed `f3`, and
//!   counters/flags for `f2`/`f4` — the proof of Theorem 9;
//! * [`run_turnstile`] answers each batch with **one pass** using
//!   ℓ₀-samplers for `f1` and relaxed `f3`, and deletion-aware counters
//!   and flags for `f2`/`f4` — the proof of Theorem 11. Indexed `f3`
//!   queries are a protocol error in this model (Definition 10
//!   deliberately drops them) and panic.
//!
//! Executors never contribute algorithm randomness: the per-pass sketch
//! seeds only decide *which* uniform sample each query receives, mirroring
//! the oracle's own sampling coins.

use crate::accounting::ExecReport;
use crate::oracle::GraphOracle;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgs_graph::{Edge, VertexId};
use sgs_stream::counters::{AdjacencyFlags, DegreeCounters, EdgeCounter, NeighborWatchers};
use sgs_stream::hash::split_seed;
use sgs_stream::l0::L0Sampler;
use sgs_stream::reservoir::ReservoirSampler;
use sgs_stream::{EdgeStream, SpaceUsage};

/// Bytes charged per retained answer (Theorem 9's `O(q log n)` term).
const ANSWER_BYTES: usize = 16;

/// Execute against a query oracle; returns the output and the adaptivity
/// actually used.
pub fn run_on_oracle<A: RoundAdaptive>(
    mut alg: A,
    oracle: &mut impl GraphOracle,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        answers = batch.into_iter().map(|q| oracle.answer(q)).collect();
    }
    (alg.output(), report)
}

/// Per-pass emulation state for the insertion-only model.
struct InsertionPass {
    /// `f1`: (target stream position, query index), sorted by position.
    /// Sampling a uniform position is exactly the distribution of a size-1
    /// reservoir over a fixed-length pass.
    edge_targets: Vec<(u64, usize)>,
    edge_hits: Vec<(usize, Edge)>,
    edge_cursor: usize,
    update_idx: u64,
    /// Relaxed `f3`: (query index, vertex, reservoir over incident edges).
    nbr_samplers: Vec<(usize, VertexId, ReservoirSampler<Edge>)>,
    degree_counters: DegreeCounters,
    degree_queries: Vec<(usize, VertexId)>,
    watchers: NeighborWatchers,
    watcher_queries: Vec<usize>,
    flags: AdjacencyFlags,
    flag_queries: Vec<(usize, Edge)>,
    edge_counter: EdgeCounter,
    count_queries: Vec<usize>,
}

impl InsertionPass {
    fn build(batch: &[Query], stream_len: u64, pass_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(pass_seed);
        let mut edge_targets = Vec::new();
        let mut nbr_samplers = Vec::new();
        let mut degree_vertices = Vec::new();
        let mut degree_queries = Vec::new();
        let mut watch_list = Vec::new();
        let mut watcher_queries = Vec::new();
        let mut flag_edges = Vec::new();
        let mut flag_queries = Vec::new();
        let mut count_queries = Vec::new();
        for (i, q) in batch.iter().enumerate() {
            match *q {
                Query::EdgeCount => count_queries.push(i),
                Query::RandomEdge => {
                    if stream_len > 0 {
                        edge_targets.push((rng.gen_range(0..stream_len), i));
                    }
                }
                Query::RandomNeighbor(v) => {
                    nbr_samplers.push((
                        i,
                        v,
                        ReservoirSampler::new(split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::Degree(v) => {
                    degree_vertices.push(v);
                    degree_queries.push((i, v));
                }
                Query::IthNeighbor(v, idx) => {
                    watch_list.push((v, idx));
                    watcher_queries.push(i);
                }
                Query::Adjacent(u, v) => {
                    let e = Edge::new(u, v);
                    flag_edges.push(e);
                    flag_queries.push((i, e));
                }
            }
        }
        edge_targets.sort_unstable();
        InsertionPass {
            edge_targets,
            edge_hits: Vec::new(),
            edge_cursor: 0,
            update_idx: 0,
            nbr_samplers,
            degree_counters: DegreeCounters::new(degree_vertices),
            degree_queries,
            watchers: NeighborWatchers::new(watch_list),
            watcher_queries,
            flags: AdjacencyFlags::new(flag_edges),
            flag_queries,
            edge_counter: EdgeCounter::new(),
            count_queries,
        }
    }

    fn space_bytes(&self) -> usize {
        self.edge_targets.len() * 16
            + self.nbr_samplers.len() * 24
            + self.degree_counters.space_bytes()
            + self.watchers.space_bytes()
            + self.flags.space_bytes()
            + self.edge_counter.space_bytes()
    }

    fn answers(self, batch_len: usize) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); batch_len];
        for (i, e) in &self.edge_hits {
            answers[*i] = Answer::Edge(Some(*e));
        }
        for (i, v, s) in &self.nbr_samplers {
            answers[*i] = Answer::Neighbor(s.sample().map(|e| e.other(*v)));
        }
        for (i, v) in &self.degree_queries {
            answers[*i] = Answer::Degree(self.degree_counters.degree(*v).unwrap_or(0));
        }
        for (k, i) in self.watcher_queries.iter().enumerate() {
            answers[*i] = Answer::Neighbor(self.watchers.answer(k));
        }
        for (i, e) in &self.flag_queries {
            answers[*i] = Answer::Adjacent(self.flags.present(*e).unwrap_or(false));
        }
        for i in &self.count_queries {
            answers[*i] = Answer::EdgeCount(self.edge_counter.count());
        }
        answers
    }
}

/// Execute as an insertion-only streaming algorithm: one pass per round
/// (Theorem 9).
pub fn run_insertion<A: RoundAdaptive>(
    mut alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;

        let mut pass = InsertionPass::build(
            &batch,
            stream.len() as u64,
            split_seed(seed, report.passes as u64),
        );
        stream.replay(&mut |u| {
            debug_assert!(u.is_insert(), "insertion executor fed a deletion");
            // f1 position sampling.
            while pass.edge_cursor < pass.edge_targets.len()
                && pass.edge_targets[pass.edge_cursor].0 == pass.update_idx
            {
                let (_, qi) = pass.edge_targets[pass.edge_cursor];
                pass.edge_hits.push((qi, u.edge));
                pass.edge_cursor += 1;
            }
            pass.update_idx += 1;
            for (_, v, s) in &mut pass.nbr_samplers {
                if u.edge.contains(*v) {
                    s.offer(u.edge);
                }
            }
            pass.degree_counters.feed(u);
            pass.watchers.feed(u);
            pass.flags.feed(u);
            pass.edge_counter.feed(u);
        });
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(pass.space_bytes());
        answers = pass.answers(batch.len());
    }
    (alg.output(), report)
}

/// Per-pass emulation state for the turnstile model.
struct TurnstilePass {
    edge_samplers: Vec<(usize, L0Sampler)>,
    nbr_samplers: Vec<(usize, VertexId, L0Sampler)>,
    degree_counters: DegreeCounters,
    degree_queries: Vec<(usize, VertexId)>,
    flags: AdjacencyFlags,
    flag_queries: Vec<(usize, Edge)>,
    edge_counter: EdgeCounter,
    count_queries: Vec<usize>,
    /// Neighbor samplers indexed by vertex for O(1) dispatch.
    nbr_by_vertex: std::collections::HashMap<VertexId, Vec<usize>>,
}

impl TurnstilePass {
    fn build(batch: &[Query], n: usize, pass_seed: u64) -> Self {
        let mut edge_samplers = Vec::new();
        let mut nbr_samplers: Vec<(usize, VertexId, L0Sampler)> = Vec::new();
        let mut degree_vertices = Vec::new();
        let mut degree_queries = Vec::new();
        let mut flag_edges = Vec::new();
        let mut flag_queries = Vec::new();
        let mut count_queries = Vec::new();
        let mut nbr_by_vertex: std::collections::HashMap<VertexId, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, q) in batch.iter().enumerate() {
            match *q {
                Query::EdgeCount => count_queries.push(i),
                Query::RandomEdge => {
                    edge_samplers.push((
                        i,
                        L0Sampler::for_edge_domain(n, split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::RandomNeighbor(v) => {
                    nbr_by_vertex.entry(v).or_default().push(nbr_samplers.len());
                    nbr_samplers.push((
                        i,
                        v,
                        L0Sampler::for_edge_domain(n, split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::Degree(v) => {
                    degree_vertices.push(v);
                    degree_queries.push((i, v));
                }
                Query::IthNeighbor(..) => {
                    panic!(
                        "IthNeighbor is not available in the turnstile model \
                         (Definition 10 replaces it with RandomNeighbor)"
                    );
                }
                Query::Adjacent(u, v) => {
                    let e = Edge::new(u, v);
                    flag_edges.push(e);
                    flag_queries.push((i, e));
                }
            }
        }
        TurnstilePass {
            edge_samplers,
            nbr_samplers,
            degree_counters: DegreeCounters::new(degree_vertices),
            degree_queries,
            flags: AdjacencyFlags::new(flag_edges),
            flag_queries,
            edge_counter: EdgeCounter::new(),
            count_queries,
            nbr_by_vertex,
        }
    }

    fn space_bytes(&self) -> usize {
        self.edge_samplers
            .iter()
            .map(|(_, s)| s.space_bytes())
            .sum::<usize>()
            + self
                .nbr_samplers
                .iter()
                .map(|(_, _, s)| s.space_bytes())
                .sum::<usize>()
            + self.degree_counters.space_bytes()
            + self.flags.space_bytes()
            + self.edge_counter.space_bytes()
    }

    fn answers(self, batch_len: usize) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); batch_len];
        for (i, s) in &self.edge_samplers {
            answers[*i] = Answer::Edge(s.sample().map(Edge::from_key));
        }
        for (i, _, s) in &self.nbr_samplers {
            answers[*i] = Answer::Neighbor(s.sample().map(|k| VertexId(k as u32)));
        }
        for (i, v) in &self.degree_queries {
            answers[*i] = Answer::Degree(self.degree_counters.degree(*v).unwrap_or(0));
        }
        for (i, e) in &self.flag_queries {
            answers[*i] = Answer::Adjacent(self.flags.present(*e).unwrap_or(false));
        }
        for i in &self.count_queries {
            answers[*i] = Answer::EdgeCount(self.edge_counter.count());
        }
        answers
    }
}

/// Execute as a turnstile streaming algorithm: one pass per round
/// (Theorem 11).
pub fn run_turnstile<A: RoundAdaptive>(
    mut alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    let n = stream.num_vertices();
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;

        let mut pass = TurnstilePass::build(&batch, n, split_seed(seed, report.passes as u64));
        stream.replay(&mut |u| {
            let d = u.delta as i64;
            for (_, s) in &mut pass.edge_samplers {
                s.update(u.edge.key(), d);
            }
            for endpoint in [u.edge.u(), u.edge.v()] {
                if let Some(ids) = pass.nbr_by_vertex.get(&endpoint) {
                    let other = u.edge.other(endpoint).0 as u64;
                    for &si in ids {
                        pass.nbr_samplers[si].2.update(other, d);
                    }
                }
            }
            pass.degree_counters.feed(u);
            pass.flags.feed(u);
            pass.edge_counter.feed(u);
        });
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(pass.space_bytes());
        answers = pass.answers(batch.len());
    }
    (alg.output(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use sgs_graph::{gen, StaticGraph};
    use sgs_stream::{InsertionStream, TurnstileStream};

    /// Asks a degree, then that many adjacency checks (2 rounds).
    struct DegreeThenProbe {
        v: VertexId,
        stage: u8,
        deg: usize,
        present: usize,
    }

    impl DegreeThenProbe {
        fn new(v: VertexId) -> Self {
            DegreeThenProbe {
                v,
                stage: 0,
                deg: 0,
                present: 0,
            }
        }
    }

    impl RoundAdaptive for DegreeThenProbe {
        type Output = (usize, usize);

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            match self.stage {
                0 => {
                    self.stage = 1;
                    vec![Query::Degree(self.v)]
                }
                1 => {
                    self.deg = answers[0].expect_degree();
                    self.stage = 2;
                    (0..self.deg as u32)
                        .filter(|&u| u != self.v.0)
                        .map(|u| Query::Adjacent(self.v, VertexId(u)))
                        .collect()
                }
                _ => {
                    if self.stage == 2 {
                        self.present =
                            answers.iter().filter(|a| a.expect_adjacent()).count();
                        self.stage = 3;
                    }
                    Vec::new()
                }
            }
        }

        fn output(&mut self) -> (usize, usize) {
            (self.deg, self.present)
        }
    }

    #[test]
    fn oracle_and_streams_agree_on_deterministic_queries() {
        let g = gen::gnm(30, 120, 3);
        let ins = InsertionStream::from_graph(&g, 4);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 5);
        let v = VertexId(7);

        let mut oracle = ExactOracle::new(&g, 1);
        let (o_out, o_rep) = run_on_oracle(DegreeThenProbe::new(v), &mut oracle);
        let (i_out, i_rep) = run_insertion(DegreeThenProbe::new(v), &ins, 2);
        let (t_out, t_rep) = run_turnstile(DegreeThenProbe::new(v), &tst, 3);

        assert_eq!(o_out, i_out);
        assert_eq!(o_out, t_out);
        assert_eq!(o_rep.rounds, 2);
        assert_eq!(i_rep.passes, 2);
        assert_eq!(t_rep.passes, 2);
        assert_eq!(o_rep.passes, 0);
    }

    /// One round, one random edge (plus the edge count).
    struct OneEdge {
        asked: bool,
        got: Option<Edge>,
        m: usize,
    }

    impl OneEdge {
        fn new() -> Self {
            OneEdge {
                asked: false,
                got: None,
                m: 0,
            }
        }
    }

    impl RoundAdaptive for OneEdge {
        type Output = (Option<Edge>, usize);

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = answers[0].expect_edge();
                self.m = answers[1].expect_edge_count();
                return Vec::new();
            }
            self.asked = true;
            vec![Query::RandomEdge, Query::EdgeCount]
        }

        fn output(&mut self) -> Self::Output {
            (self.got, self.m)
        }
    }

    fn edge_distribution<F: Fn(u64) -> Option<Edge>>(trials: u64, run: F) -> Vec<(u64, u32)> {
        let mut counts = std::collections::HashMap::new();
        for t in 0..trials {
            if let Some(e) = run(t) {
                *counts.entry(e.key()).or_insert(0u32) += 1;
            }
        }
        let mut v: Vec<(u64, u32)> = counts.into_iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn random_edge_uniform_across_executors() {
        let g = gen::gnm(12, 16, 8);
        let ins = InsertionStream::from_graph(&g, 9);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 10);
        let trials = 8000u64;

        let ins_d = edge_distribution(trials, |t| run_insertion(OneEdge::new(), &ins, t).0 .0);
        let tst_d = edge_distribution(trials, |t| run_turnstile(OneEdge::new(), &tst, t).0 .0);

        assert_eq!(ins_d.len(), 16);
        for &(_, c) in &ins_d {
            let dev = (c as f64 - trials as f64 / 16.0).abs() / (trials as f64 / 16.0);
            assert!(dev < 0.2, "insertion deviation {dev}");
        }
        assert_eq!(tst_d.len(), 16);
        let total: u32 = tst_d.iter().map(|&(_, c)| c).sum();
        for &(k, c) in &tst_d {
            let e = Edge::from_key(k);
            assert!(g.has_edge(e.u(), e.v()), "sampled deleted edge {e:?}");
            let dev = (c as f64 - total as f64 / 16.0).abs() / (total as f64 / 16.0);
            assert!(dev < 0.25, "turnstile deviation {dev} for {e:?}");
        }
    }

    #[test]
    fn edge_count_correct_in_all_executors() {
        let g = gen::gnm(30, 77, 2);
        let ins = InsertionStream::from_graph(&g, 3);
        let tst = TurnstileStream::from_graph_with_churn(&g, 2.0, 4);
        let mut oracle = ExactOracle::new(&g, 5);
        assert_eq!(run_on_oracle(OneEdge::new(), &mut oracle).0 .1, 77);
        assert_eq!(run_insertion(OneEdge::new(), &ins, 6).0 .1, 77);
        assert_eq!(run_turnstile(OneEdge::new(), &tst, 7).0 .1, 77);
    }

    /// One round: random neighbor of v.
    struct OneNeighbor {
        v: VertexId,
        asked: bool,
        got: Option<VertexId>,
    }

    impl RoundAdaptive for OneNeighbor {
        type Output = Option<VertexId>;

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = answers[0].expect_neighbor();
                return Vec::new();
            }
            self.asked = true;
            vec![Query::RandomNeighbor(self.v)]
        }

        fn output(&mut self) -> Option<VertexId> {
            self.got
        }
    }

    #[test]
    fn random_neighbor_lands_on_true_neighbors() {
        let g = gen::gnm(20, 60, 11);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.5, 12);
        let v = VertexId(3);
        let mut seen = std::collections::HashSet::new();
        for t in 0..400u64 {
            let (out, _) = run_turnstile(
                OneNeighbor {
                    v,
                    asked: false,
                    got: None,
                },
                &tst,
                t,
            );
            if let Some(u) = out {
                assert!(g.has_edge(v, u), "{u:?} is not a neighbor of {v:?}");
                seen.insert(u);
            }
        }
        assert_eq!(seen.len(), g.degree(v));
    }

    #[test]
    fn insertion_random_neighbor_uniform() {
        let g = gen::star_graph(6); // center 0 with 6 petals
        let ins = InsertionStream::from_graph(&g, 13);
        let mut counts = std::collections::HashMap::new();
        let trials = 6000u64;
        for t in 0..trials {
            let (out, _) = run_insertion(
                OneNeighbor {
                    v: VertexId(0),
                    asked: false,
                    got: None,
                },
                &ins,
                t,
            );
            *counts.entry(out.unwrap().0).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&u, &c) in &counts {
            let dev = (c as f64 - 1000.0).abs() / 1000.0;
            assert!(dev < 0.2, "petal {u}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "IthNeighbor is not available")]
    fn turnstile_rejects_indexed_neighbor_queries() {
        struct Bad;
        impl RoundAdaptive for Bad {
            type Output = ();
            fn next_round(&mut self, _: &[Answer]) -> Vec<Query> {
                vec![Query::IthNeighbor(VertexId(0), 1)]
            }
            fn output(&mut self) {}
        }
        let g = gen::gnm(5, 5, 1);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.0, 2);
        let _ = run_turnstile(Bad, &tst, 3);
    }

    #[test]
    fn space_reported() {
        let g = gen::gnm(30, 120, 3);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 5);
        let (_, rep) = run_turnstile(OneEdge::new(), &tst, 2);
        assert!(rep.max_pass_space_bytes > 0);
        assert!(rep.answer_bytes > 0);
        assert_eq!(rep.queries, 2);
    }

    #[test]
    fn multiple_edge_queries_get_independent_samples() {
        struct ManyEdges {
            asked: bool,
            edges: Vec<Option<Edge>>,
        }
        impl RoundAdaptive for ManyEdges {
            type Output = Vec<Option<Edge>>;
            fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
                if self.asked {
                    self.edges = answers.iter().map(|a| a.expect_edge()).collect();
                    return Vec::new();
                }
                self.asked = true;
                vec![Query::RandomEdge; 64]
            }
            fn output(&mut self) -> Self::Output {
                std::mem::take(&mut self.edges)
            }
        }
        let g = gen::gnm(40, 200, 14);
        let ins = InsertionStream::from_graph(&g, 15);
        let (edges, _) = run_insertion(
            ManyEdges {
                asked: false,
                edges: vec![],
            },
            &ins,
            16,
        );
        assert_eq!(edges.len(), 64);
        assert!(edges.iter().all(|e| e.is_some()));
        let distinct: std::collections::HashSet<u64> =
            edges.iter().map(|e| e.unwrap().key()).collect();
        assert!(distinct.len() > 16, "64 samples over 200 edges should vary");
    }
}
