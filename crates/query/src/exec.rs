//! The three executors: query-access, insertion-only streaming
//! (Theorem 9), and turnstile streaming (Theorem 11).
//!
//! All three drive the *same* [`RoundAdaptive`] state machine; they differ
//! only in how each round's query batch is answered:
//!
//! * [`run_on_oracle`] forwards queries to a [`GraphOracle`];
//! * [`run_insertion`] answers each batch with **one pass**: uniform
//!   position sampling for `f1` (distributionally identical to a size-1
//!   reservoir over a fixed-length pass, but O(1) per update), per-vertex
//!   incident-edge reservoirs for relaxed `f3` (exactly uniform in a
//!   simple graph; an SoA [`ReservoirBank`] whose acceptance scheme —
//!   skip-ahead default vs the per-offer oracle — is picked by
//!   [`PassOpts::reservoir`]), arrival-order watchers for indexed `f3`,
//!   and counters/flags for `f2`/`f4` — the proof of Theorem 9;
//! * [`run_turnstile`] answers each batch with **one pass** using
//!   ℓ₀-samplers for `f1` and relaxed `f3`, and deletion-aware counters
//!   and flags for `f2`/`f4` — the proof of Theorem 11. Indexed `f3`
//!   queries are a protocol error in this model (Definition 10
//!   deliberately drops them) and panic.
//!
//! Both streaming executors dispatch each update through one shared
//! [`QueryRouter`]: the whole merged batch of a [`crate::Parallel`]
//! sampler bank is bucketed into per-vertex and per-edge flat indexes at
//! round start, so per-update work is O(1 + hits) regardless of how many
//! trials are pending. The pre-refactor executors survive verbatim in
//! [`crate::reference`]; seeded equivalence tests pin the two
//! byte-identical.
//!
//! `run_insertion`/`run_turnstile` are the **single-shard cases** of the
//! sharded pipeline in [`crate::sharded`]: they partition the stream into
//! one shard and run the same split/route/merge machinery an N-shard
//! execution uses. The per-batch entry points
//! [`answer_insertion_batch`] / [`answer_turnstile_batch`] keep the
//! direct single-stream implementation — they are the seam benchmarks
//! and sharded drivers merge through, and the baseline the sharded path
//! is measured against.
//!
//! Executors never contribute algorithm randomness: the per-pass sketch
//! seeds only decide *which* uniform sample each query receives, mirroring
//! the oracle's own sampling coins.

use crate::accounting::ExecReport;
use crate::arena::RouterArena;
use crate::oracle::GraphOracle;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use crate::router::{QueryRouter, RouterMode};
use crate::sharded::run_turnstile_sharded;
use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::l0::{L0Mode, L0Sampler};
use sgs_stream::reservoir::{ReservoirBank, ReservoirMode};
use sgs_stream::{EdgeStream, ShardedFeed, SpaceUsage};

/// Bytes charged per retained answer (Theorem 9's `O(q log n)` term).
pub(crate) const ANSWER_BYTES: usize = 16;

/// Default feed block size for the blocked (batched-probe, lane-loop)
/// hot path. Big enough to amortize the per-block staging (two batched
/// index probes, one ℓ₀ base-hash chunk walk) and keep ~8-lane pipelines
/// full past remainder effects, small enough that per-block scratch
/// (3 keys + 3 group ids per update) stays L1-resident. `0` (or `1`)
/// selects the scalar per-update path — `BENCH_feedpath.json` records
/// both, and `sgs count --block N` exposes the knob end to end.
pub const DEFAULT_BLOCK: usize = 128;

/// Feed-path tuning knobs threaded through every insertion executor
/// entry point (`*_with_opts`), the sharded drivers, `sgs-core`'s
/// estimators, and `sgs count`.
///
/// `block` is the PR-3 feed block size (`<= 1` = scalar per-update
/// path; byte-identical either way). `reservoir` picks the relaxed-`f3`
/// sampler's acceptance scheme: [`ReservoirMode::Skip`] (default) does
/// one RNG draw per *acceptance* via the exact skip-ahead inverse
/// transform — `O(k + accepts)` per delivery block instead of one draw
/// per sampler per offer — while [`ReservoirMode::Offer`] replays the
/// per-offer scalar oracle (byte-identical to the frozen
/// `crate::reference` executors, kept as the distribution-equivalence
/// baseline). The two modes consume different coins, so they are
/// distribution-equivalent, not byte-identical; `seen()` accounting and
/// every non-sampler answer are exact in both.
///
/// `l0` picks the turnstile ℓ₀-bank feed path (insertion passes carry
/// no ℓ₀ state and ignore it): [`L0Mode::Dispatch`] (default) walks
/// only the survivor-level prefix of each repetition, with level-cohort
/// slicing on blocked feeds; [`L0Mode::Predicated`] is the PR-3
/// full-bank masked scan. The two paths are **byte-identical** — same
/// draws, same wrapping sums — at every shard count, block size,
/// engine, and under recovery.
#[derive(Clone, Copy, Debug)]
pub struct PassOpts {
    /// Feed block size; `<= 1` selects the scalar per-update path.
    pub block: usize,
    /// Relaxed-`f3` reservoir acceptance scheme (insertion model only —
    /// turnstile `f3` runs on ℓ₀-samplers and ignores this).
    pub reservoir: ReservoirMode,
    /// Turnstile ℓ₀-bank feed path (turnstile model only).
    pub l0: L0Mode,
}

impl Default for PassOpts {
    fn default() -> Self {
        PassOpts {
            block: DEFAULT_BLOCK,
            reservoir: ReservoirMode::default(),
            l0: L0Mode::default(),
        }
    }
}

impl PassOpts {
    /// Default opts with an explicit feed block size.
    pub fn with_block(block: usize) -> Self {
        PassOpts {
            block,
            ..Default::default()
        }
    }

    /// Default opts with an explicit reservoir mode.
    pub fn with_reservoir(reservoir: ReservoirMode) -> Self {
        PassOpts {
            reservoir,
            ..Default::default()
        }
    }

    /// Default opts with an explicit ℓ₀ feed path.
    pub fn with_l0(l0: L0Mode) -> Self {
        PassOpts {
            l0,
            ..Default::default()
        }
    }

    /// Builder-style override of the ℓ₀ feed path.
    pub fn l0(self, l0: L0Mode) -> Self {
        PassOpts { l0, ..self }
    }

    /// Builder-style override of the reservoir acceptance scheme.
    pub fn reservoir(self, reservoir: ReservoirMode) -> Self {
        PassOpts { reservoir, ..self }
    }

    /// The statistical-oracle configuration: scalar feed, per-offer
    /// reservoirs, predicated ℓ₀ scans — the exact instruction sequence
    /// of the frozen reference executors.
    pub fn oracle() -> Self {
        PassOpts {
            block: 0,
            reservoir: ReservoirMode::Offer,
            l0: L0Mode::Predicated,
        }
    }
}

/// A pass-emulation state that can absorb the stream either per update
/// (scalar) or per block (batched probes / lane loops) — the two
/// byte-identical feed paths [`replay_blocked`] switches between.
pub(crate) trait BlockFeed {
    fn feed(&mut self, u: sgs_stream::EdgeUpdate);
    fn feed_block(&mut self, block: &[sgs_stream::EdgeUpdate]);
}

/// Drive a replayable stream through a pass state in blocks of `block`
/// updates (remainder block included); `block <= 1` is the scalar path.
/// Sources that expose their update buffer are chunked in place (zero
/// copies); everything else is buffered through the replay callback.
pub(crate) fn replay_blocked(stream: &impl EdgeStream, block: usize, pass: &mut impl BlockFeed) {
    if block <= 1 {
        stream.replay(&mut |u| pass.feed(u));
        return;
    }
    if let Some(updates) = stream.as_updates() {
        for chunk in updates.chunks(block) {
            pass.feed_block(chunk);
        }
        return;
    }
    let mut buf: Vec<sgs_stream::EdgeUpdate> = Vec::with_capacity(block.min(stream.len()));
    stream.replay(&mut |u| {
        buf.push(u);
        if buf.len() == block {
            pass.feed_block(&buf);
            buf.clear();
        }
    });
    if !buf.is_empty() {
        pass.feed_block(&buf);
    }
}

/// Sort `f1` position targets by `(position, slot)`. Positions live in
/// `0..stream_len`, so when a counting table is affordable a two-pass
/// bucket sort beats the comparison sort that dominates round-1 setup at
/// large trial counts. Targets arrive slot-ascending, so bucketing is
/// stable in exactly the comparison order.
pub(crate) fn sort_targets(targets: &mut Vec<(u64, u32)>, stream_len: u64) {
    if targets.is_empty() {
        return;
    }
    if stream_len > 4 * targets.len() as u64 + 1024 {
        targets.sort_unstable();
        return;
    }
    let mut counts = vec![0u32; stream_len as usize + 1];
    for &(pos, _) in targets.iter() {
        counts[pos as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut sorted = vec![(0u64, 0u32); targets.len()];
    for &(pos, slot) in targets.iter() {
        sorted[counts[pos as usize] as usize] = (pos, slot);
        counts[pos as usize] += 1;
    }
    *targets = sorted;
}

/// Execute against a query oracle; returns the output and the adaptivity
/// actually used.
pub fn run_on_oracle<A: RoundAdaptive>(
    mut alg: A,
    oracle: &mut impl GraphOracle,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        answers = batch.into_iter().map(|q| oracle.answer(q)).collect();
    }
    (alg.output(), report)
}

/// Per-pass state for the insertion-only model: the shared router plus
/// the model-specific `f1` position cursor and `f3` reservoirs.
struct InsertionPass {
    router: QueryRouter,
    /// `f1`: (target stream position, query slot), sorted by position.
    /// Sampling a uniform position is exactly the distribution of a
    /// size-1 reservoir over a fixed-length pass.
    targets: Vec<(u64, u32)>,
    cursor: usize,
    update_idx: u64,
    edge_hits: Vec<(u32, Edge)>,
    /// Relaxed `f3`: an SoA reservoir bank, one lane per pooled neighbor
    /// slot, aligned with [`QueryRouter::neighbor_slots`]. Router
    /// deliveries hand the bank contiguous lane ranges, so skip mode
    /// pays a countdown compare per pooled sampler instead of an RNG
    /// draw per offer.
    reservoirs: ReservoirBank<Edge>,
}

impl InsertionPass {
    fn build(batch: &[Query], stream_len: u64, pass_seed: u64, reservoir: ReservoirMode) -> Self {
        let router = QueryRouter::build(batch, RouterMode::Insertion);
        // f1 position draws are consumed in batch order from the pass rng
        // (`edge_slots` preserves batch order), matching the reference
        // executor coin-for-coin.
        let mut rng = FastRng::seed_from_u64(pass_seed);
        let mut targets = Vec::with_capacity(router.edge_slots().len());
        if stream_len > 0 {
            for &slot in router.edge_slots() {
                targets.push((rng.gen_range(0..stream_len), slot));
            }
        }
        sort_targets(&mut targets, stream_len);
        let mut reservoirs = ReservoirBank::from_seeds(
            router
                .neighbor_slots()
                .iter()
                .map(|&slot| split_seed(pass_seed, slot as u64)),
            reservoir,
        );
        // Each pooled vertex group is a cohort: its lanes always receive
        // offers together, so a skip-mode delivery is one clock-vs-min
        // compare instead of a per-lane plane walk.
        reservoirs.bind_cohorts(router.neighbor_group_ranges());
        InsertionPass {
            router,
            targets,
            cursor: 0,
            update_idx: 0,
            edge_hits: Vec::new(),
            reservoirs,
        }
    }

    #[inline]
    fn feed(&mut self, u: sgs_stream::EdgeUpdate) {
        debug_assert!(u.is_insert(), "insertion executor fed a deletion");
        while self.cursor < self.targets.len() && self.targets[self.cursor].0 == self.update_idx {
            self.edge_hits.push((self.targets[self.cursor].1, u.edge));
            self.cursor += 1;
        }
        self.update_idx += 1;
        let edge = u.edge;
        let reservoirs = &mut self.reservoirs;
        self.router.feed(u, |s, e| {
            reservoirs.offer_cohort(s as usize, e as usize, edge)
        });
    }

    /// Blocked sibling of [`InsertionPass::feed`]: position targets are
    /// matched per update (they are position-keyed, not probe-keyed),
    /// then the whole block goes through the router's batched-probe
    /// path. Reservoir offer sequences are unchanged — the router drains
    /// blocks in stream order.
    fn feed_block(&mut self, block: &[sgs_stream::EdgeUpdate]) {
        for u in block {
            debug_assert!(u.is_insert(), "insertion executor fed a deletion");
            while self.cursor < self.targets.len() && self.targets[self.cursor].0 == self.update_idx
            {
                self.edge_hits.push((self.targets[self.cursor].1, u.edge));
                self.cursor += 1;
            }
            self.update_idx += 1;
        }
        let reservoirs = &mut self.reservoirs;
        self.router.feed_block(block, |j, s, e| {
            reservoirs.offer_cohort(s as usize, e as usize, block[j].edge)
        });
    }

    fn space_bytes(&self) -> usize {
        self.router.space_bytes() + self.targets.len() * 16 + self.reservoirs.space_bytes()
    }
}

impl BlockFeed for InsertionPass {
    fn feed(&mut self, u: sgs_stream::EdgeUpdate) {
        InsertionPass::feed(self, u);
    }

    fn feed_block(&mut self, block: &[sgs_stream::EdgeUpdate]) {
        InsertionPass::feed_block(self, block);
    }
}

impl InsertionPass {
    fn into_answers(self) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); self.router.batch_len()];
        for &(slot, e) in &self.edge_hits {
            answers[slot as usize] = Answer::Edge(Some(e));
        }
        for ((&slot, v), res) in self
            .router
            .neighbor_slots()
            .iter()
            .zip(self.router.neighbor_vertices())
            .zip(self.reservoirs.samples_iter())
        {
            answers[slot as usize] = Answer::Neighbor(res.map(|e| e.other(v)));
        }
        self.router.distribute(&mut answers);
        answers
    }
}

/// Answer one round's batch with one insertion-only pass (the unit step
/// of Theorem 9). Returns the answers and the pass state's measured
/// footprint. Exposed so benchmarks and sharded drivers can exercise the
/// pass emulation directly.
pub fn answer_insertion_batch(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_with_opts(batch, stream, pass_seed, PassOpts::default())
}

/// [`answer_insertion_batch`] with an explicit feed block size:
/// `block <= 1` replays the scalar per-update path, anything larger
/// feeds the pass in blocks of `block` updates (batched index probes,
/// remainder block included). Answers are byte-identical either way
/// (the reservoir mode stays the default for every block size).
pub fn answer_insertion_batch_with_block(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
    block: usize,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_with_opts(batch, stream, pass_seed, PassOpts::with_block(block))
}

/// [`answer_insertion_batch`] with full feed-path options: block size
/// plus the relaxed-`f3` reservoir mode (see [`PassOpts`]).
pub fn answer_insertion_batch_with_opts(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
    opts: PassOpts,
) -> (Vec<Answer>, usize) {
    let mut pass = InsertionPass::build(batch, stream.len() as u64, pass_seed, opts.reservoir);
    replay_blocked(stream, opts.block, &mut pass);
    let space = pass.space_bytes();
    (pass.into_answers(), space)
}

/// Diagnostic twin of [`answer_insertion_batch_with_opts`]: run the same
/// pass and report how many RNG draws the relaxed-`f3` reservoir bank
/// consumed. The acceptance criteria for the skip-ahead rework are
/// stated in *counted* draws per pass (`Θ(k·m)` per-offer vs
/// `O(k·log m)` skip-ahead); `benches/reservoir.rs` records both modes
/// through this seam.
pub fn insertion_pass_reservoir_draws(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
    opts: PassOpts,
) -> u64 {
    let mut pass = InsertionPass::build(batch, stream.len() as u64, pass_seed, opts.reservoir);
    replay_blocked(stream, opts.block, &mut pass);
    pass.reservoirs.rng_draws()
}

/// Execute as an insertion-only streaming algorithm: one pass per round
/// (Theorem 9).
///
/// Since the sharded-pipeline refactor this is the thin single-shard case
/// of [`crate::sharded::run_insertion_sharded`]: the stream is
/// partitioned into one shard and each round is answered through the
/// sharded driver (which at one shard replays the feed straight through
/// [`answer_insertion_batch`], keeping the direct per-pass cost).
///
/// The partition buffers the stream's updates once (driver-side harness
/// state, like the replayable stream object itself — *not* counted in
/// `max_pass_space_bytes`, which keeps reporting only the Theorem-9
/// pass-emulation state) and stores positions as `u32`. Callers that run
/// many executions over one stream should partition once themselves and
/// call [`crate::sharded::run_insertion_sharded`] with a shared feed and
/// arena.
pub fn run_insertion<A: RoundAdaptive>(
    alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    run_insertion_with_opts(alg, stream, seed, PassOpts::default())
}

/// [`run_insertion`] with explicit feed-path options — the seam the
/// distribution-equivalence suite uses to replay the per-offer oracle
/// (`PassOpts::oracle()`) against the skip-ahead default.
pub fn run_insertion_with_opts<A: RoundAdaptive>(
    alg: A,
    stream: &impl EdgeStream,
    seed: u64,
    opts: PassOpts,
) -> (A::Output, ExecReport) {
    let feed = ShardedFeed::partition(stream, 1);
    let mut arena = RouterArena::new();
    crate::sharded::run_insertion_sharded_with_opts(alg, &feed, seed, &mut arena, opts)
}

/// Per-pass state for the turnstile model: the shared router plus one
/// ℓ₀-sampler per `f1` slot and per pooled neighbor slot.
struct TurnstilePass {
    router: QueryRouter,
    edge_samplers: Vec<L0Sampler>,
    nbr_samplers: Vec<L0Sampler>,
    /// The vertex each pooled neighbor sampler listens on.
    nbr_verts: Vec<VertexId>,
    /// Blocked-feed scratch: the current block as `(edge key, delta)`
    /// pairs, fed to each `f1` ℓ₀-bank sampler-hot.
    kd_scratch: Vec<(u64, i64)>,
    /// ℓ₀-bank feed path; bit-identical either way ([`PassOpts::l0`]).
    l0: L0Mode,
}

impl TurnstilePass {
    fn build(batch: &[Query], n: usize, pass_seed: u64, l0: L0Mode) -> Self {
        let router = QueryRouter::build(batch, RouterMode::Turnstile);
        let edge_samplers = router
            .edge_slots()
            .iter()
            .map(|&slot| L0Sampler::for_edge_domain(n, split_seed(pass_seed, slot as u64)))
            .collect();
        let nbr_samplers = router
            .neighbor_slots()
            .iter()
            .map(|&slot| L0Sampler::for_edge_domain(n, split_seed(pass_seed, slot as u64)))
            .collect();
        let nbr_verts = router.neighbor_vertices().collect();
        TurnstilePass {
            router,
            edge_samplers,
            nbr_samplers,
            nbr_verts,
            kd_scratch: Vec::new(),
            l0,
        }
    }

    #[inline]
    fn feed(&mut self, u: sgs_stream::EdgeUpdate) {
        let d = u.delta as i64;
        let key = u.edge.key();
        let l0 = self.l0;
        // Every f1 sampler summarizes the whole edge domain, so each one
        // absorbs every update — inherent to ℓ₀-sampling, not routing.
        for s in &mut self.edge_samplers {
            s.update_with(l0, key, d);
        }
        let edge = u.edge;
        let nbr_samplers = &mut self.nbr_samplers;
        let nbr_verts = &self.nbr_verts;
        self.router.feed(u, |s, e| {
            for i in s as usize..e as usize {
                nbr_samplers[i].update_with(l0, edge.other(nbr_verts[i]).0 as u64, d);
            }
        });
    }

    /// Blocked sibling of [`TurnstilePass::feed`]: the `f1` bank absorbs
    /// the block *samplers outer, updates inner* — each ℓ₀-bank's SoA
    /// planes stay cache-hot across the whole block instead of every
    /// bank cycling through cache per update. Detector fields are
    /// additive, so the reordering is bit-identical, not just
    /// distributionally so.
    fn feed_block(&mut self, block: &[sgs_stream::EdgeUpdate]) {
        self.kd_scratch.clear();
        self.kd_scratch
            .extend(block.iter().map(|u| (u.edge.key(), u.delta as i64)));
        let l0 = self.l0;
        for s in &mut self.edge_samplers {
            s.update_batch_with(l0, &self.kd_scratch);
        }
        let nbr_samplers = &mut self.nbr_samplers;
        let nbr_verts = &self.nbr_verts;
        self.router.feed_block(block, |j, s, e| {
            let u = block[j];
            for i in s as usize..e as usize {
                nbr_samplers[i].update_with(
                    l0,
                    u.edge.other(nbr_verts[i]).0 as u64,
                    u.delta as i64,
                );
            }
        });
    }

    fn space_bytes(&self) -> usize {
        self.router.space_bytes()
            + self
                .edge_samplers
                .iter()
                .chain(&self.nbr_samplers)
                .map(|s| s.space_bytes())
                .sum::<usize>()
            // Blocked-feed scratch is real pass state: one (key, delta)
            // pair per update of the current block.
            + self.kd_scratch.capacity() * std::mem::size_of::<(u64, i64)>()
    }
}

impl BlockFeed for TurnstilePass {
    fn feed(&mut self, u: sgs_stream::EdgeUpdate) {
        TurnstilePass::feed(self, u);
    }

    fn feed_block(&mut self, block: &[sgs_stream::EdgeUpdate]) {
        TurnstilePass::feed_block(self, block);
    }
}

impl TurnstilePass {
    fn into_answers(self) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); self.router.batch_len()];
        for (&slot, s) in self.router.edge_slots().iter().zip(&self.edge_samplers) {
            answers[slot as usize] = Answer::Edge(s.sample().map(Edge::from_key));
        }
        for (&slot, s) in self.router.neighbor_slots().iter().zip(&self.nbr_samplers) {
            answers[slot as usize] = Answer::Neighbor(s.sample().map(|k| VertexId(k as u32)));
        }
        self.router.distribute(&mut answers);
        answers
    }
}

/// Answer one round's batch with one turnstile pass (the unit step of
/// Theorem 11). Returns the answers and the pass state's measured
/// footprint.
pub fn answer_turnstile_batch(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_with_opts(batch, stream, pass_seed, PassOpts::default())
}

/// [`answer_turnstile_batch`] with an explicit feed block size; see
/// [`answer_insertion_batch_with_block`].
pub fn answer_turnstile_batch_with_block(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
    block: usize,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_with_opts(batch, stream, pass_seed, PassOpts::with_block(block))
}

/// [`answer_turnstile_batch`] with full feed-path options: block size
/// plus the ℓ₀-bank feed path ([`PassOpts::l0`]). Answers are
/// byte-identical across every option combination.
pub fn answer_turnstile_batch_with_opts(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
    opts: PassOpts,
) -> (Vec<Answer>, usize) {
    let mut pass = TurnstilePass::build(batch, stream.num_vertices(), pass_seed, opts.l0);
    replay_blocked(stream, opts.block, &mut pass);
    let space = pass.space_bytes();
    (pass.into_answers(), space)
}

/// Execute as a turnstile streaming algorithm: one pass per round
/// (Theorem 11).
///
/// The thin single-shard case of
/// [`crate::sharded::run_turnstile_sharded`]; see [`run_insertion`].
pub fn run_turnstile<A: RoundAdaptive>(
    alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    let feed = ShardedFeed::partition(stream, 1);
    let mut arena = RouterArena::new();
    run_turnstile_sharded(alg, &feed, seed, &mut arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use crate::reference::{run_insertion_reference, run_turnstile_reference};
    use sgs_graph::{gen, StaticGraph};
    use sgs_stream::{InsertionStream, TurnstileStream};

    /// Asks a degree, then that many adjacency checks (2 rounds).
    struct DegreeThenProbe {
        v: VertexId,
        stage: u8,
        deg: usize,
        present: usize,
    }

    impl DegreeThenProbe {
        fn new(v: VertexId) -> Self {
            DegreeThenProbe {
                v,
                stage: 0,
                deg: 0,
                present: 0,
            }
        }
    }

    impl RoundAdaptive for DegreeThenProbe {
        type Output = (usize, usize);

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            match self.stage {
                0 => {
                    self.stage = 1;
                    vec![Query::Degree(self.v)]
                }
                1 => {
                    self.deg = answers[0].expect_degree();
                    self.stage = 2;
                    (0..self.deg as u32)
                        .filter(|&u| u != self.v.0)
                        .map(|u| Query::Adjacent(self.v, VertexId(u)))
                        .collect()
                }
                _ => {
                    if self.stage == 2 {
                        self.present = answers.iter().filter(|a| a.expect_adjacent()).count();
                        self.stage = 3;
                    }
                    Vec::new()
                }
            }
        }

        fn output(&mut self) -> (usize, usize) {
            (self.deg, self.present)
        }
    }

    #[test]
    fn oracle_and_streams_agree_on_deterministic_queries() {
        let g = gen::gnm(30, 120, 3);
        let ins = InsertionStream::from_graph(&g, 4);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 5);
        let v = VertexId(7);

        let mut oracle = ExactOracle::new(&g, 1);
        let (o_out, o_rep) = run_on_oracle(DegreeThenProbe::new(v), &mut oracle);
        let (i_out, i_rep) = run_insertion(DegreeThenProbe::new(v), &ins, 2);
        let (t_out, t_rep) = run_turnstile(DegreeThenProbe::new(v), &tst, 3);

        assert_eq!(o_out, i_out);
        assert_eq!(o_out, t_out);
        assert_eq!(o_rep.rounds, 2);
        assert_eq!(i_rep.passes, 2);
        assert_eq!(t_rep.passes, 2);
        assert_eq!(o_rep.passes, 0);
    }

    /// One round, one random edge (plus the edge count).
    struct OneEdge {
        asked: bool,
        got: Option<Edge>,
        m: usize,
    }

    impl OneEdge {
        fn new() -> Self {
            OneEdge {
                asked: false,
                got: None,
                m: 0,
            }
        }
    }

    impl RoundAdaptive for OneEdge {
        type Output = (Option<Edge>, usize);

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = answers[0].expect_edge();
                self.m = answers[1].expect_edge_count();
                return Vec::new();
            }
            self.asked = true;
            vec![Query::RandomEdge, Query::EdgeCount]
        }

        fn output(&mut self) -> Self::Output {
            (self.got, self.m)
        }
    }

    fn edge_distribution<F: Fn(u64) -> Option<Edge>>(trials: u64, run: F) -> Vec<(u64, u32)> {
        let mut counts = std::collections::HashMap::new();
        for t in 0..trials {
            if let Some(e) = run(t) {
                *counts.entry(e.key()).or_insert(0u32) += 1;
            }
        }
        let mut v: Vec<(u64, u32)> = counts.into_iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn random_edge_uniform_across_executors() {
        let g = gen::gnm(12, 16, 8);
        let ins = InsertionStream::from_graph(&g, 9);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 10);
        let trials = 8000u64;

        let ins_d = edge_distribution(trials, |t| run_insertion(OneEdge::new(), &ins, t).0 .0);
        let tst_d = edge_distribution(trials, |t| run_turnstile(OneEdge::new(), &tst, t).0 .0);

        assert_eq!(ins_d.len(), 16);
        for &(_, c) in &ins_d {
            let dev = (c as f64 - trials as f64 / 16.0).abs() / (trials as f64 / 16.0);
            assert!(dev < 0.2, "insertion deviation {dev}");
        }
        assert_eq!(tst_d.len(), 16);
        let total: u32 = tst_d.iter().map(|&(_, c)| c).sum();
        for &(k, c) in &tst_d {
            let e = Edge::from_key(k);
            assert!(g.has_edge(e.u(), e.v()), "sampled deleted edge {e:?}");
            let dev = (c as f64 - total as f64 / 16.0).abs() / (total as f64 / 16.0);
            assert!(dev < 0.25, "turnstile deviation {dev} for {e:?}");
        }
    }

    #[test]
    fn edge_count_correct_in_all_executors() {
        let g = gen::gnm(30, 77, 2);
        let ins = InsertionStream::from_graph(&g, 3);
        let tst = TurnstileStream::from_graph_with_churn(&g, 2.0, 4);
        let mut oracle = ExactOracle::new(&g, 5);
        assert_eq!(run_on_oracle(OneEdge::new(), &mut oracle).0 .1, 77);
        assert_eq!(run_insertion(OneEdge::new(), &ins, 6).0 .1, 77);
        assert_eq!(run_turnstile(OneEdge::new(), &tst, 7).0 .1, 77);
    }

    /// One round: random neighbor of v.
    struct OneNeighbor {
        v: VertexId,
        asked: bool,
        got: Option<VertexId>,
    }

    impl RoundAdaptive for OneNeighbor {
        type Output = Option<VertexId>;

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = answers[0].expect_neighbor();
                return Vec::new();
            }
            self.asked = true;
            vec![Query::RandomNeighbor(self.v)]
        }

        fn output(&mut self) -> Option<VertexId> {
            self.got
        }
    }

    #[test]
    fn random_neighbor_lands_on_true_neighbors() {
        let g = gen::gnm(20, 60, 11);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.5, 12);
        let v = VertexId(3);
        let mut seen = std::collections::HashSet::new();
        for t in 0..400u64 {
            let (out, _) = run_turnstile(
                OneNeighbor {
                    v,
                    asked: false,
                    got: None,
                },
                &tst,
                t,
            );
            if let Some(u) = out {
                assert!(g.has_edge(v, u), "{u:?} is not a neighbor of {v:?}");
                seen.insert(u);
            }
        }
        assert_eq!(seen.len(), g.degree(v));
    }

    #[test]
    fn insertion_random_neighbor_uniform() {
        let g = gen::star_graph(6); // center 0 with 6 petals
        let ins = InsertionStream::from_graph(&g, 13);
        let mut counts = std::collections::HashMap::new();
        let trials = 6000u64;
        for t in 0..trials {
            let (out, _) = run_insertion(
                OneNeighbor {
                    v: VertexId(0),
                    asked: false,
                    got: None,
                },
                &ins,
                t,
            );
            *counts.entry(out.unwrap().0).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&u, &c) in &counts {
            let dev = (c as f64 - 1000.0).abs() / 1000.0;
            assert!(dev < 0.2, "petal {u}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "IthNeighbor is not available")]
    fn turnstile_rejects_indexed_neighbor_queries() {
        struct Bad;
        impl RoundAdaptive for Bad {
            type Output = ();
            fn next_round(&mut self, _: &[Answer]) -> Vec<Query> {
                vec![Query::IthNeighbor(VertexId(0), 1)]
            }
            fn output(&mut self) {}
        }
        let g = gen::gnm(5, 5, 1);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.0, 2);
        let _ = run_turnstile(Bad, &tst, 3);
    }

    #[test]
    fn space_reported() {
        let g = gen::gnm(30, 120, 3);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 5);
        let (_, rep) = run_turnstile(OneEdge::new(), &tst, 2);
        assert!(rep.max_pass_space_bytes > 0);
        assert!(rep.answer_bytes > 0);
        assert_eq!(rep.queries, 2);
    }

    #[test]
    fn multiple_edge_queries_get_independent_samples() {
        struct ManyEdges {
            asked: bool,
            edges: Vec<Option<Edge>>,
        }
        impl RoundAdaptive for ManyEdges {
            type Output = Vec<Option<Edge>>;
            fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
                if self.asked {
                    self.edges = answers.iter().map(|a| a.expect_edge()).collect();
                    return Vec::new();
                }
                self.asked = true;
                vec![Query::RandomEdge; 64]
            }
            fn output(&mut self) -> Self::Output {
                std::mem::take(&mut self.edges)
            }
        }
        let g = gen::gnm(40, 200, 14);
        let ins = InsertionStream::from_graph(&g, 15);
        let (edges, _) = run_insertion(
            ManyEdges {
                asked: false,
                edges: vec![],
            },
            &ins,
            16,
        );
        assert_eq!(edges.len(), 64);
        assert!(edges.iter().all(|e| e.is_some()));
        let distinct: std::collections::HashSet<u64> =
            edges.iter().map(|e| e.unwrap().key()).collect();
        assert!(distinct.len() > 16, "64 samples over 200 edges should vary");
    }

    /// A mixed-kind batch covering every query type the model allows,
    /// compared slot-for-slot against the reference executor.
    struct MixedBatch {
        indexed: bool,
        asked: bool,
        got: Vec<Answer>,
    }

    impl RoundAdaptive for MixedBatch {
        type Output = Vec<Answer>;

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = answers.to_vec();
                return Vec::new();
            }
            self.asked = true;
            let mut qs = vec![Query::EdgeCount, Query::RandomEdge];
            for v in 0..10u32 {
                qs.push(Query::Degree(VertexId(v % 5)));
                qs.push(Query::RandomNeighbor(VertexId(v)));
                qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
                if self.indexed {
                    qs.push(Query::IthNeighbor(VertexId(v), (v as u64 % 4) + 1));
                }
                qs.push(Query::RandomEdge);
            }
            qs
        }

        fn output(&mut self) -> Vec<Answer> {
            std::mem::take(&mut self.got)
        }
    }

    #[test]
    fn router_matches_reference_on_mixed_insertion_batches() {
        // Byte-identity vs the frozen reference requires the per-offer
        // reservoir oracle (skip mode consumes a different coin
        // sequence by design; its equivalence is distributional and
        // pinned in tests/reservoir_equivalence.rs). The blocked feed
        // path is byte-identical within a mode, so run it blocked.
        let g = gen::gnm(25, 90, 17);
        let ins = InsertionStream::from_graph(&g, 18);
        for seed in 0..30u64 {
            let new = MixedBatch {
                indexed: true,
                asked: false,
                got: vec![],
            };
            let old = MixedBatch {
                indexed: true,
                asked: false,
                got: vec![],
            };
            let (a, ra) = run_insertion_with_opts(
                new,
                &ins,
                seed,
                PassOpts::with_reservoir(ReservoirMode::Offer),
            );
            let (b, rb) = run_insertion_reference(old, &ins, seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ra.queries, rb.queries);
            assert_eq!(ra.passes, rb.passes);
        }
    }

    #[test]
    fn router_matches_reference_on_mixed_turnstile_batches() {
        let g = gen::gnm(25, 90, 19);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 20);
        for seed in 0..30u64 {
            let new = MixedBatch {
                indexed: false,
                asked: false,
                got: vec![],
            };
            let old = MixedBatch {
                indexed: false,
                asked: false,
                got: vec![],
            };
            let (a, _) = run_turnstile(new, &tst, seed);
            let (b, _) = run_turnstile_reference(old, &tst, seed);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
