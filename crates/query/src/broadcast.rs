//! Broadcast pass execution: one ingest feeds every consumer at once.
//!
//! The sharded executors in [`crate::sharded`] give each shard worker a
//! private replay of its buffer. This module routes the same per-shard
//! pass state machines ([`InsertionShardPass`] / [`TurnstileShardPass`])
//! through a bounded [`Broadcast`] ring instead: **one producer** pushes
//! the feed's routed buffer in blocks, and every consumer — the N shard
//! routers *plus* any number of side consumers (baselines, exact
//! oracles, pass counters) — walks the blocks through its own cursor.
//!
//! **Equivalence.** A shard consumer reconstructs exactly its scoped
//! buffer from the ring: every [`RoutedUpdate`] carries the owner/other
//! shard ids cached at partition (buffer-fill) time, so
//! `delivery_for(shard)` yields the same `ShardUpdate` sequence —
//! positions, owned flags, order — that `ShardedFeed::shard(i)` stores,
//! with zero hash recomputes at the cursor. Delivery chunking differs
//! (ring blocks vs one big slice) but chunk boundaries never change an
//! answer, so broadcast answers are **byte-identical** to the sharded
//! (and therefore single-stream, and therefore frozen-reference) answers
//! for every seed, shard count, feed block size, and reservoir mode —
//! `tests/broadcast_equivalence.rs` pins all of it.
//!
//! **Pass accounting.** One broadcast session is one logical pass on the
//! feed, however many consumers ride it (side consumers included: that
//! is the whole point — the TRIÈST baseline, the exact oracle, and a
//! raw counter ride the estimator's first pass instead of replaying the
//! stream privately). Consumer loss does not change the count.
//!
//! **Scheduling.** When the injected [`ExecPolicy`] says to thread
//! (default: more than one core) the producer, shard workers, and side
//! consumers run on scoped threads against the blocking ring API;
//! otherwise a deterministic cooperative round-robin drives the same
//! ring through the try-APIs. The round-loop executors
//! ([`run_insertion_broadcast_with_opts`] and its turnstile sibling)
//! additionally keep a persistent [`crate::runtime::ShardRuntime`] pool
//! under the threaded policy, feeding the *same* workers pass after
//! pass instead of respawning scoped threads per round. All schedules
//! produce identical answers — every consumer sees the whole stream in
//! order either way.

use crate::accounting::ExecReport;
use crate::arena::{RouterArena, ShardSlot};
use crate::exec::{PassOpts, ANSWER_BYTES};
use crate::policy::ExecPolicy;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use crate::router::RouterMode;
use crate::sharded::{
    draw_targets, merge_answers, split_batch, InsertionShardPass, ShardOutcome, TurnstileShardPass,
};
use sgs_stream::broadcast::{Broadcast, BroadcastConsumer, RoutedProducer, TryNext};
use sgs_stream::hash::split_seed;
use sgs_stream::sharded::{RoutedUpdate, ShardUpdate, ShardedFeed};
use std::time::Instant;

/// A side consumer of one broadcast pass: fed every ring block (the
/// whole routed stream, in order), independent of shard routing. The
/// executor layer does not interpret these — `sgs-core` plugs in the
/// TRIÈST baseline, the exact-oracle graph builder, and raw counters.
pub type SideSink<'a> = Box<dyn FnMut(&[RoutedUpdate]) + Send + 'a>;

/// Ring geometry and scheduling policy for a broadcast pass.
#[derive(Clone, Copy, Debug)]
pub struct BroadcastOpts {
    /// In-flight ring blocks (backpressure bound).
    pub ring_capacity: usize,
    /// Updates per ring block (transport granularity; answers are
    /// identical for any value).
    pub ring_block: usize,
    /// Injected thread/pinning policy (answers are identical under
    /// every policy).
    pub policy: ExecPolicy,
}

impl Default for BroadcastOpts {
    fn default() -> Self {
        BroadcastOpts {
            ring_capacity: sgs_stream::broadcast::DEFAULT_RING_CAPACITY,
            ring_block: sgs_stream::broadcast::DEFAULT_RING_BLOCK,
            policy: ExecPolicy::default(),
        }
    }
}

impl BroadcastOpts {
    /// Default geometry under an explicit [`ExecPolicy`].
    pub fn with_policy(policy: ExecPolicy) -> Self {
        BroadcastOpts {
            policy,
            ..BroadcastOpts::default()
        }
    }
}

/// Filter one ring block down to shard `sid`'s deliveries — the cached
/// owner/other fields make this two compares per update, no hashing.
pub(crate) fn filter_block(block: &[RoutedUpdate], sid: usize, scratch: &mut Vec<ShardUpdate>) {
    scratch.clear();
    for r in block {
        if let Some(su) = r.delivery_for(sid) {
            scratch.push(su);
        }
    }
}

/// The shard-pass operations the generic ring driver needs; both
/// model-specific state machines expose exactly this surface.
trait RingPass: Send {
    fn feed(&mut self, deliveries: &[ShardUpdate]);
    fn record_pass_nanos(&mut self, nanos: u64);
    fn finish(self) -> ShardOutcome
    where
        Self: Sized;
}

impl RingPass for InsertionShardPass<'_> {
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        InsertionShardPass::feed(self, deliveries);
    }
    fn record_pass_nanos(&mut self, nanos: u64) {
        InsertionShardPass::record_pass_nanos(self, nanos);
    }
    fn finish(self) -> ShardOutcome {
        InsertionShardPass::finish(self)
    }
}

impl RingPass for TurnstileShardPass<'_> {
    fn feed(&mut self, deliveries: &[ShardUpdate]) {
        TurnstileShardPass::feed(self, deliveries);
    }
    fn record_pass_nanos(&mut self, nanos: u64) {
        TurnstileShardPass::record_pass_nanos(self, nanos);
    }
    fn finish(self) -> ShardOutcome {
        TurnstileShardPass::finish(self)
    }
}

/// Drive one broadcast pass: producer + per-shard pass machines + side
/// sinks over one ring — threaded (blocking API, scoped threads) or
/// cooperative (try-API round-robin on this thread). Identical answers
/// either way; shard order is preserved in the returned outcomes.
///
/// Per-shard feed durations land in the arena slots just like the
/// scoped-thread path records them (so `RouterArena::shard_pass_nanos`
/// keeps working on the serving path), with one caveat: under the
/// threaded schedule a shard's figure is its drain wall time (ring
/// waits included), under the cooperative schedule only its own
/// processing segments.
fn drive_ring<P: RingPass>(
    feed: &ShardedFeed,
    passes: Vec<P>,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> Vec<ShardOutcome> {
    let shards = passes.len();
    let ring = Broadcast::new(bcast.ring_capacity);
    let shard_consumers: Vec<BroadcastConsumer> = (0..shards).map(|_| ring.subscribe()).collect();
    let side_consumers: Vec<BroadcastConsumer> = side.iter().map(|_| ring.subscribe()).collect();
    let producer = RoutedProducer::new(feed, bcast.ring_block);
    // The producer is one extra party, so thread policy is decided by
    // the consumer count (>= 2 parties always; the injected policy rules).
    if bcast.policy.use_threads((shards + side.len()).max(2)) {
        let ring = &ring;
        std::thread::scope(|scope| {
            scope.spawn(move || producer.run(ring));
            let side_handles: Vec<_> = side
                .iter_mut()
                .zip(side_consumers)
                .map(|(sink, consumer)| {
                    scope.spawn(move || {
                        for block in consumer {
                            sink(&block);
                        }
                    })
                })
                .collect();
            let shard_handles: Vec<_> = passes
                .into_iter()
                .zip(shard_consumers)
                .enumerate()
                .map(|(sid, (mut pass, consumer))| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut scratch: Vec<ShardUpdate> = Vec::new();
                        for block in consumer {
                            filter_block(&block, sid, &mut scratch);
                            pass.feed(&scratch);
                        }
                        pass.record_pass_nanos(t0.elapsed().as_nanos() as u64);
                        pass.finish()
                    })
                })
                .collect();
            for h in side_handles {
                h.join().unwrap();
            }
            shard_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    } else {
        let mut producer = producer;
        let mut workers: Vec<(P, BroadcastConsumer, bool, u64)> = passes
            .into_iter()
            .zip(shard_consumers)
            .map(|(p, c)| (p, c, false, 0u64))
            .collect();
        let mut side_workers: Vec<(&mut SideSink<'_>, BroadcastConsumer, bool)> = side
            .iter_mut()
            .zip(side_consumers)
            .map(|(s, c)| (s, c, false))
            .collect();
        let mut scratch: Vec<ShardUpdate> = Vec::new();
        loop {
            let produced = producer.pump(&ring);
            let mut all_ended = true;
            for (sid, (pass, c, ended, nanos)) in workers.iter_mut().enumerate() {
                let t0 = Instant::now();
                while !*ended {
                    match c.try_next() {
                        TryNext::Block(b) => {
                            filter_block(&b, sid, &mut scratch);
                            pass.feed(&scratch);
                        }
                        TryNext::Pending => break,
                        TryNext::Ended => *ended = true,
                    }
                }
                *nanos += t0.elapsed().as_nanos() as u64;
                all_ended &= *ended;
            }
            for (sink, c, ended) in side_workers.iter_mut() {
                while !*ended {
                    match c.try_next() {
                        TryNext::Block(b) => sink(&b),
                        TryNext::Pending => break,
                        TryNext::Ended => *ended = true,
                    }
                }
                all_ended &= *ended;
            }
            if produced && all_ended {
                break;
            }
        }
        workers
            .into_iter()
            .map(|(mut p, _, _, nanos)| {
                p.record_pass_nanos(nanos);
                p.finish()
            })
            .collect()
    }
}

/// One insertion-model broadcast pass through [`drive_ring`].
fn run_insertion_broadcast_pass(
    feed: &ShardedFeed,
    slots: &mut [ShardSlot],
    targets: &[(u64, u32)],
    pass_seed: u64,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> Vec<ShardOutcome> {
    let passes: Vec<InsertionShardPass<'_>> = slots
        .iter_mut()
        .map(|slot| InsertionShardPass::new(slot, targets, pass_seed, opts))
        .collect();
    drive_ring(feed, passes, bcast, side)
}

/// One turnstile-model broadcast pass through [`drive_ring`].
fn run_turnstile_broadcast_pass(
    feed: &ShardedFeed,
    slots: &mut [ShardSlot],
    f1_slots: &[u32],
    pass_seed: u64,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> Vec<ShardOutcome> {
    let n = feed.num_vertices();
    let passes: Vec<TurnstileShardPass<'_>> = slots
        .iter_mut()
        .map(|slot| TurnstileShardPass::new(slot, n, f1_slots, pass_seed, opts))
        .collect();
    drive_ring(feed, passes, bcast, side)
}

/// Answer one round's batch with one **broadcast** insertion-only pass:
/// the fan-out generalization of
/// [`crate::sharded::answer_insertion_batch_sharded`], byte-identical to
/// it (and to the single-stream executors) for every shard count, with
/// optional side consumers riding the same ingest.
pub fn answer_insertion_batch_broadcast(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_broadcast_with_opts(
        batch,
        feed,
        pass_seed,
        arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        &mut [],
    )
}

/// [`answer_insertion_batch_broadcast`] with explicit feed-path options,
/// ring geometry, and side consumers.
pub fn answer_insertion_batch_broadcast_with_opts(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    split_batch(batch, RouterMode::Insertion, feed.shard_map(), arena);
    let mut targets = std::mem::take(&mut arena.scratch_targets);
    draw_targets(batch, feed.stream_len() as u64, pass_seed, &mut targets);
    let outcomes = {
        let slots = &mut arena.slots[..shards];
        let targets = &targets;
        run_insertion_broadcast_pass(feed, slots, targets, pass_seed, opts, bcast, side)
    };
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>() + targets.len() * 16;
    arena.scratch_targets = targets;
    let answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
    (answers, space)
}

/// Answer one round's batch with one **broadcast** turnstile pass.
pub fn answer_turnstile_batch_broadcast(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_broadcast_with_opts(
        batch,
        feed,
        pass_seed,
        arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        &mut [],
    )
}

/// [`answer_turnstile_batch_broadcast`] with explicit feed-path options
/// ([`PassOpts`]: block size + ℓ₀ feed path), ring geometry, and side
/// consumers.
pub fn answer_turnstile_batch_broadcast_with_opts(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    split_batch(batch, RouterMode::Turnstile, feed.shard_map(), arena);
    let f1_slots = std::mem::take(&mut arena.scratch_edge);
    let mut outcomes = {
        let slots = &mut arena.slots[..shards];
        run_turnstile_broadcast_pass(feed, slots, &f1_slots, pass_seed, opts, bcast, side)
    };
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>();
    // Merge the per-shard f1 banks into shard 0's (linear sketches):
    // the result is the exact single-stream sketch state.
    let (head, rest) = outcomes.split_at_mut(1);
    for o in rest.iter() {
        for (a, b) in head[0].f1_bank.iter_mut().zip(&o.f1_bank) {
            a.merge(b);
        }
    }
    let mut answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
    for (&slot, s) in f1_slots.iter().zip(&outcomes[0].f1_bank) {
        answers[slot as usize] = Answer::Edge(s.sample().map(sgs_graph::Edge::from_key));
    }
    arena.scratch_edge = f1_slots;
    (answers, space)
}

/// Execute a round-adaptive algorithm over broadcast passes: one ring
/// session per round. Side consumers ride the **first** pass only (they
/// are single-pass algorithms and must see the stream exactly once —
/// the same one replay their single-stream counterparts get).
pub fn run_insertion_broadcast<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    side: &mut [SideSink<'_>],
) -> (A::Output, ExecReport) {
    run_insertion_broadcast_with_opts(
        alg,
        feed,
        seed,
        arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        side,
    )
}

/// [`run_insertion_broadcast`] with explicit feed-path options and ring
/// geometry.
pub fn run_insertion_broadcast_with_opts<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> (A::Output, ExecReport) {
    let shards = feed.num_shards();
    // Threaded policy: stand up the persistent worker pool once and
    // feed it every round — no per-pass thread spawns on the hot path.
    let mut runtime = bcast
        .policy
        .use_threads((shards + side.len()).max(2))
        .then(|| crate::runtime::ShardRuntime::new(shards, bcast.policy));
    run_insertion_rounds(alg, feed, seed, arena, opts, bcast, side, runtime.as_mut())
}

/// [`run_insertion_broadcast_with_opts`] on a caller-owned persistent
/// [`ShardRuntime`] — the serving path, where one long-lived worker
/// pool answers every query instead of standing up threads per run.
/// Byte-identical to the internally-pooled run: both dispatch the same
/// `insertion_pass` per round. The runtime's shard count must match
/// the feed's.
#[allow(clippy::too_many_arguments)]
pub fn run_insertion_broadcast_on_runtime<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
    runtime: &mut crate::runtime::ShardRuntime,
) -> (A::Output, ExecReport) {
    assert_eq!(
        runtime.shards(),
        feed.num_shards(),
        "runtime pool and feed must agree on the shard count"
    );
    run_insertion_rounds(alg, feed, seed, arena, opts, bcast, side, Some(runtime))
}

#[allow(clippy::too_many_arguments)]
fn run_insertion_rounds<A: RoundAdaptive>(
    mut alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
    mut runtime: Option<&mut crate::runtime::ShardRuntime>,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    arena.begin_run();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        let pass_seed = split_seed(seed, report.passes as u64);
        let side_now: &mut [SideSink<'_>] = if report.passes == 1 { side } else { &mut [] };
        let (a, space) = match runtime.as_deref_mut() {
            Some(rt) => rt.insertion_pass(&batch, feed, pass_seed, arena, opts, bcast, side_now),
            None => answer_insertion_batch_broadcast_with_opts(
                &batch, feed, pass_seed, arena, opts, bcast, side_now,
            ),
        };
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
        arena.note_round();
    }
    arena.end_run();
    (alg.output(), report)
}

/// Turnstile sibling of [`run_insertion_broadcast`].
pub fn run_turnstile_broadcast<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    side: &mut [SideSink<'_>],
) -> (A::Output, ExecReport) {
    run_turnstile_broadcast_with_opts(
        alg,
        feed,
        seed,
        arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        side,
    )
}

/// [`run_turnstile_broadcast`] with explicit feed-path options and ring
/// geometry.
pub fn run_turnstile_broadcast_with_opts<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
) -> (A::Output, ExecReport) {
    let shards = feed.num_shards();
    // See run_insertion_broadcast_with_opts: one persistent pool per run.
    let mut runtime = bcast
        .policy
        .use_threads((shards + side.len()).max(2))
        .then(|| crate::runtime::ShardRuntime::new(shards, bcast.policy));
    run_turnstile_rounds(alg, feed, seed, arena, opts, bcast, side, runtime.as_mut())
}

/// Turnstile sibling of [`run_insertion_broadcast_on_runtime`].
#[allow(clippy::too_many_arguments)]
pub fn run_turnstile_broadcast_on_runtime<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
    runtime: &mut crate::runtime::ShardRuntime,
) -> (A::Output, ExecReport) {
    assert_eq!(
        runtime.shards(),
        feed.num_shards(),
        "runtime pool and feed must agree on the shard count"
    );
    run_turnstile_rounds(alg, feed, seed, arena, opts, bcast, side, Some(runtime))
}

#[allow(clippy::too_many_arguments)]
fn run_turnstile_rounds<A: RoundAdaptive>(
    mut alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    side: &mut [SideSink<'_>],
    mut runtime: Option<&mut crate::runtime::ShardRuntime>,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    arena.begin_run();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        let pass_seed = split_seed(seed, report.passes as u64);
        let side_now: &mut [SideSink<'_>] = if report.passes == 1 { side } else { &mut [] };
        let (a, space) = match runtime.as_deref_mut() {
            Some(rt) => rt.turnstile_pass(&batch, feed, pass_seed, arena, opts, bcast, side_now),
            None => answer_turnstile_batch_broadcast_with_opts(
                &batch, feed, pass_seed, arena, opts, bcast, side_now,
            ),
        };
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
        arena.note_round();
    }
    arena.end_run();
    (alg.output(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{answer_insertion_batch, answer_turnstile_batch};
    use sgs_graph::{gen, VertexId};
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn mixed_insertion_batch() -> Vec<Query> {
        let mut qs = vec![Query::EdgeCount, Query::RandomEdge];
        for v in 0..12u32 {
            qs.push(Query::Degree(VertexId(v % 7)));
            qs.push(Query::RandomNeighbor(VertexId(v)));
            qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
            qs.push(Query::IthNeighbor(VertexId(v), (v as u64 % 4) + 1));
            qs.push(Query::RandomEdge);
        }
        qs
    }

    #[test]
    fn broadcast_insertion_batch_matches_unsharded_all_shard_counts() {
        let g = gen::gnm(25, 90, 117);
        let ins = InsertionStream::from_graph(&g, 118);
        let batch = mixed_insertion_batch();
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&ins, shards);
            let mut arena = RouterArena::new();
            for pass_seed in 0..8u64 {
                let (a, _) = answer_insertion_batch(&batch, &ins, pass_seed);
                let (b, _) = answer_insertion_batch_broadcast(&batch, &feed, pass_seed, &mut arena);
                assert_eq!(a, b, "{shards} shards, pass seed {pass_seed}");
            }
        }
    }

    #[test]
    fn broadcast_turnstile_batch_matches_unsharded_all_shard_counts() {
        let g = gen::gnm(25, 90, 119);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 120);
        let mut batch = mixed_insertion_batch();
        batch.retain(|q| !matches!(q, Query::IthNeighbor(..)));
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&tst, shards);
            let mut arena = RouterArena::new();
            for pass_seed in 0..5u64 {
                let (a, _) = answer_turnstile_batch(&batch, &tst, pass_seed);
                let (b, _) = answer_turnstile_batch_broadcast(&batch, &feed, pass_seed, &mut arena);
                assert_eq!(a, b, "{shards} shards, pass seed {pass_seed}");
            }
        }
    }

    #[test]
    fn threaded_and_cooperative_schedules_agree() {
        // Both ring schedules (blocking threads vs cooperative
        // round-robin) must produce identical answers; the injected
        // ExecPolicy forces each one directly — no env mutation.
        let g = gen::gnm(20, 70, 123);
        let ins = InsertionStream::from_graph(&g, 124);
        let batch = mixed_insertion_batch();
        let (expected, _) = answer_insertion_batch(&batch, &ins, 5);
        let feed = ShardedFeed::partition(&ins, 3);
        let mut arena = RouterArena::new();
        for policy in [ExecPolicy::threaded(), ExecPolicy::serial()] {
            let (got, _) = answer_insertion_batch_broadcast_with_opts(
                &batch,
                &feed,
                5,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::with_policy(policy),
                &mut [],
            );
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn side_sinks_see_the_whole_stream_once_and_answers_are_unchanged() {
        let g = gen::gnm(22, 80, 125);
        let ins = InsertionStream::from_graph(&g, 126);
        let batch = mixed_insertion_batch();
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let (expected, _) = answer_insertion_batch(&batch, &ins, 9);
        let mut seen: Vec<RoutedUpdate> = Vec::new();
        let mut count = 0u64;
        {
            let mut sinks: Vec<SideSink<'_>> = vec![
                Box::new(|b: &[RoutedUpdate]| seen.extend_from_slice(b)),
                Box::new(|b: &[RoutedUpdate]| count += b.len() as u64),
            ];
            let (got, _) = answer_insertion_batch_broadcast_with_opts(
                &batch,
                &feed,
                9,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::default(),
                &mut sinks,
            );
            assert_eq!(got, expected);
        }
        assert_eq!(seen, feed.routed());
        assert_eq!(count, feed.stream_len() as u64);
    }

    #[test]
    fn run_broadcast_counts_one_logical_pass_per_round_and_feeds_sides_once() {
        // A 2-round protocol: sides must see exactly one stream copy
        // (pass 1), and the feed must count one logical pass per round.
        struct TwoRounds {
            round: usize,
        }
        impl RoundAdaptive for TwoRounds {
            type Output = ();
            fn next_round(&mut self, _a: &[Answer]) -> Vec<Query> {
                self.round += 1;
                if self.round <= 2 {
                    vec![Query::EdgeCount]
                } else {
                    Vec::new()
                }
            }
            fn output(&mut self) {}
        }
        let g = gen::gnm(18, 60, 127);
        let ins = InsertionStream::from_graph(&g, 128);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let mut sides_updates = 0u64;
        {
            let mut sinks: Vec<SideSink<'_>> = vec![Box::new(|b: &[RoutedUpdate]| {
                sides_updates += b.len() as u64
            })];
            let (_, report) =
                run_insertion_broadcast(TwoRounds { round: 0 }, &feed, 7, &mut arena, &mut sinks);
            assert_eq!(report.rounds, 2);
            assert_eq!(report.passes, 2);
        }
        assert_eq!(feed.logical_passes(), 2, "one logical pass per round");
        assert_eq!(
            sides_updates,
            feed.stream_len() as u64,
            "side consumers ride the first pass only"
        );
    }

    #[test]
    fn zero_shard_side_only_ring_is_fine_with_empty_stream() {
        // Degenerate but legal: an empty stream broadcast to consumers.
        let ins = InsertionStream::from_edge_order(4, vec![]);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let batch = vec![Query::EdgeCount, Query::RandomEdge];
        let (a, _) = answer_insertion_batch_broadcast(&batch, &feed, 3, &mut arena);
        assert_eq!(a[0], Answer::EdgeCount(0));
        assert_eq!(a[1], Answer::Edge(None));
    }
}
