//! The *relaxed* augmented general graph model (Definition 10) as an
//! explicit failure-injecting oracle.
//!
//! Definition 10 weakens `f1`/`f3`: samples are only approximately
//! uniform (±1/n^c) and may fail outright with probability ≤ 1/n^c.
//! The turnstile executor realizes this model implicitly (ℓ₀-samplers
//! fail on ties); [`RelaxedOracle`] realizes it *explicitly* with a
//! tunable failure probability, which lets tests and experiments verify
//! that algorithms written for the relaxed model degrade gracefully:
//! failures may cost success probability, but soundness (no fabricated
//! copies, no wrong adjacency/degree answers) is preserved — exactly the
//! property the proof of Lemma 18 relies on.

use crate::oracle::{ExactOracle, GraphOracle};
use crate::query::{Answer, Query};
use sgs_graph::StaticGraph;
use sgs_stream::hash::FastRng;

/// An oracle for the relaxed model: exact `f2`/`f4`, failure-injected
/// `f1`/`f3`.
pub struct RelaxedOracle {
    inner: ExactOracle,
    rng: FastRng,
    fail_prob: f64,
    failures_injected: u64,
}

impl RelaxedOracle {
    /// Snapshot a graph; sampling queries fail with probability
    /// `fail_prob`.
    pub fn new(g: &impl StaticGraph, fail_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fail_prob));
        RelaxedOracle {
            inner: ExactOracle::new(g, seed ^ 0x9e37_79b9),
            rng: FastRng::seed_from_u64(seed),
            fail_prob,
            failures_injected: 0,
        }
    }

    /// How many sampling queries were failed so far.
    pub fn failures_injected(&self) -> u64 {
        self.failures_injected
    }

    /// The failure probability per Definition 10 for a graph on `n`
    /// vertices with constant `c`: `1/n^c`.
    pub fn definition_fail_prob(n: usize, c: f64) -> f64 {
        (n.max(2) as f64).powf(-c).min(1.0)
    }
}

impl GraphOracle for RelaxedOracle {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn answer(&mut self, q: Query) -> Answer {
        match q {
            Query::RandomEdge => {
                if self.rng.gen_bool(self.fail_prob) {
                    self.failures_injected += 1;
                    Answer::Edge(None)
                } else {
                    self.inner.answer(q)
                }
            }
            Query::RandomNeighbor(_) => {
                if self.rng.gen_bool(self.fail_prob) {
                    self.failures_injected += 1;
                    Answer::Neighbor(None)
                } else {
                    self.inner.answer(q)
                }
            }
            Query::IthNeighbor(..) => panic!(
                "IthNeighbor is not part of the relaxed model (Definition 10); \
                 use RandomNeighbor"
            ),
            // f2/f4/EdgeCount stay exact.
            other => self.inner.answer(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{gen, StaticGraph, VertexId};

    #[test]
    fn zero_failure_matches_exact() {
        let g = gen::gnm(20, 60, 1);
        let mut o = RelaxedOracle::new(&g, 0.0, 2);
        for _ in 0..100 {
            assert!(o.answer(Query::RandomEdge).expect_edge().is_some());
        }
        assert_eq!(o.failures_injected(), 0);
    }

    #[test]
    fn failures_are_injected_at_rate() {
        let g = gen::gnm(20, 60, 3);
        let mut o = RelaxedOracle::new(&g, 0.3, 4);
        let trials = 10_000;
        let mut fails = 0;
        for _ in 0..trials {
            if o.answer(Query::RandomEdge).expect_edge().is_none() {
                fails += 1;
            }
        }
        let rate = fails as f64 / trials as f64;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
        assert_eq!(o.failures_injected(), fails);
    }

    #[test]
    fn deterministic_queries_never_fail() {
        let g = gen::gnm(20, 60, 5);
        let mut o = RelaxedOracle::new(&g, 0.9, 6);
        for v in 0..20u32 {
            let v = VertexId(v);
            assert_eq!(o.answer(Query::Degree(v)).expect_degree(), g.degree(v));
        }
        assert_eq!(o.answer(Query::EdgeCount).expect_edge_count(), 60);
    }

    #[test]
    #[should_panic(expected = "not part of the relaxed model")]
    fn indexed_neighbor_rejected() {
        let g = gen::gnm(5, 5, 7);
        let mut o = RelaxedOracle::new(&g, 0.1, 8);
        let _ = o.answer(Query::IthNeighbor(VertexId(0), 1));
    }

    #[test]
    fn definition_probability() {
        let p = RelaxedOracle::definition_fail_prob(100, 2.0);
        assert!((p - 1e-4).abs() < 1e-12);
    }
}
