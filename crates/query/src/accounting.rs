//! Execution reports: rounds, passes, queries, measured space.

/// What an executor observed while driving a round-adaptive algorithm.
///
/// * For [`crate::exec::run_on_oracle`], `passes == 0` and `rounds` is the
///   adaptivity actually used.
/// * For the streaming executors, `passes == rounds` by construction
///   (Theorems 9/11: one pass per round) and `max_pass_space_bytes` is the
///   peak measured footprint of the per-pass emulation state — the
///   concrete counterpart of the theorems' `O(q log n)` / `O(q log⁴ n)`
///   terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Rounds of adaptivity consumed (number of non-empty batches).
    pub rounds: usize,
    /// Streaming passes performed (0 for oracle execution).
    pub passes: usize,
    /// Total queries asked across all rounds.
    pub queries: usize,
    /// Peak bytes of per-pass emulation state (sketches + counters),
    /// 0 for oracle execution.
    pub max_pass_space_bytes: usize,
    /// Bytes needed to retain all query answers (the `O(q log n)` term of
    /// Theorem 9): 16 bytes per answer in this implementation.
    pub answer_bytes: usize,
}

impl ExecReport {
    /// Total measured space: per-pass sketches plus retained answers.
    pub fn total_space_bytes(&self) -> usize {
        self.max_pass_space_bytes + self.answer_bytes
    }

    /// Merge (sum queries/space, max rounds/passes) — used when several
    /// independent executions jointly implement one logical algorithm.
    pub fn merged_with(&self, other: &ExecReport) -> ExecReport {
        ExecReport {
            rounds: self.rounds.max(other.rounds),
            passes: self.passes.max(other.passes),
            queries: self.queries + other.queries,
            max_pass_space_bytes: self.max_pass_space_bytes + other.max_pass_space_bytes,
            answer_bytes: self.answer_bytes + other.answer_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_semantics() {
        let a = ExecReport {
            rounds: 3,
            passes: 3,
            queries: 10,
            max_pass_space_bytes: 100,
            answer_bytes: 160,
        };
        let b = ExecReport {
            rounds: 5,
            passes: 5,
            queries: 7,
            max_pass_space_bytes: 50,
            answer_bytes: 112,
        };
        let m = a.merged_with(&b);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.passes, 5);
        assert_eq!(m.queries, 17);
        assert_eq!(m.total_space_bytes(), 150 + 272);
    }
}
