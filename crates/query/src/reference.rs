//! Reference executors: the pre-QueryRouter pass emulation, frozen.
//!
//! These are the straightforward, obviously-correct implementations of
//! the Theorem 9 / Theorem 11 pass emulators that `exec.rs` shipped
//! before the [`crate::router::QueryRouter`] refactor: the per-kind
//! HashMap trackers from [`sgs_stream::counters`] probed independently
//! per update, plus a per-update linear scan over all pending neighbor
//! samplers. They are kept for two jobs:
//!
//! 1. **Equivalence oracle** — the router-based executors must produce
//!    *byte-identical* outputs to these for every fixed seed (the
//!    `router_equivalence` integration tests); the routing refactor is
//!    pure plumbing and may not move a single coin.
//! 2. **Perf baseline** — `benches/executor.rs` measures router vs
//!    reference on the same workloads; `BENCH_executor.json` records the
//!    before/after. Do not optimize this module: its slowness is the
//!    point.
//!
//! Randomness contract shared with the optimized executors (this is what
//! makes byte-identity possible): per pass, a [`FastRng`] seeded with
//! `split_seed(seed, pass_index)` is consumed in batch order for `f1`
//! position draws; each `RandomNeighbor`/`RandomEdge` sampler is seeded
//! with `split_seed(pass_seed, query_index)`.

use crate::accounting::ExecReport;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use sgs_graph::{Edge, VertexId};
use sgs_stream::counters::{AdjacencyFlags, DegreeCounters, EdgeCounter, NeighborWatchers};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::l0::L0Sampler;
use sgs_stream::reservoir::ReservoirSampler;
use sgs_stream::{EdgeStream, SpaceUsage};
use std::collections::HashMap;

/// Bytes charged per retained answer (Theorem 9's `O(q log n)` term).
const ANSWER_BYTES: usize = 16;

/// Per-pass emulation state for the insertion-only model (pre-refactor
/// layout: independent structures, linear neighbor-sampler scan).
struct RefInsertionPass {
    edge_targets: Vec<(u64, usize)>,
    edge_hits: Vec<(usize, Edge)>,
    edge_cursor: usize,
    update_idx: u64,
    nbr_samplers: Vec<(usize, VertexId, ReservoirSampler<Edge>)>,
    degree_counters: DegreeCounters,
    degree_queries: Vec<(usize, VertexId)>,
    watchers: NeighborWatchers,
    watcher_queries: Vec<usize>,
    flags: AdjacencyFlags,
    flag_queries: Vec<(usize, Edge)>,
    edge_counter: EdgeCounter,
    count_queries: Vec<usize>,
}

impl RefInsertionPass {
    fn build(batch: &[Query], stream_len: u64, pass_seed: u64) -> Self {
        let mut rng = FastRng::seed_from_u64(pass_seed);
        let mut edge_targets = Vec::new();
        let mut nbr_samplers = Vec::new();
        let mut degree_vertices = Vec::new();
        let mut degree_queries = Vec::new();
        let mut watch_list = Vec::new();
        let mut watcher_queries = Vec::new();
        let mut flag_edges = Vec::new();
        let mut flag_queries = Vec::new();
        let mut count_queries = Vec::new();
        for (i, q) in batch.iter().enumerate() {
            match *q {
                Query::EdgeCount => count_queries.push(i),
                Query::RandomEdge => {
                    if stream_len > 0 {
                        edge_targets.push((rng.gen_range(0..stream_len), i));
                    }
                }
                Query::RandomNeighbor(v) => {
                    nbr_samplers.push((
                        i,
                        v,
                        ReservoirSampler::new(split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::Degree(v) => {
                    degree_vertices.push(v);
                    degree_queries.push((i, v));
                }
                Query::IthNeighbor(v, idx) => {
                    watch_list.push((v, idx));
                    watcher_queries.push(i);
                }
                Query::Adjacent(u, v) => {
                    let e = Edge::new(u, v);
                    flag_edges.push(e);
                    flag_queries.push((i, e));
                }
            }
        }
        edge_targets.sort_unstable();
        RefInsertionPass {
            edge_targets,
            edge_hits: Vec::new(),
            edge_cursor: 0,
            update_idx: 0,
            nbr_samplers,
            degree_counters: DegreeCounters::new(degree_vertices),
            degree_queries,
            watchers: NeighborWatchers::new(watch_list),
            watcher_queries,
            flags: AdjacencyFlags::new(flag_edges),
            flag_queries,
            edge_counter: EdgeCounter::new(),
            count_queries,
        }
    }

    fn space_bytes(&self) -> usize {
        self.edge_targets.len() * 16
            + self.nbr_samplers.len() * 24
            + self.degree_counters.space_bytes()
            + self.watchers.space_bytes()
            + self.flags.space_bytes()
            + self.edge_counter.space_bytes()
    }

    fn answers(self, batch_len: usize) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); batch_len];
        for (i, e) in &self.edge_hits {
            answers[*i] = Answer::Edge(Some(*e));
        }
        for (i, v, s) in &self.nbr_samplers {
            answers[*i] = Answer::Neighbor(s.sample().map(|e| e.other(*v)));
        }
        for (i, v) in &self.degree_queries {
            answers[*i] = Answer::Degree(self.degree_counters.degree(*v).unwrap_or(0));
        }
        for (k, i) in self.watcher_queries.iter().enumerate() {
            answers[*i] = Answer::Neighbor(self.watchers.answer(k));
        }
        for (i, e) in &self.flag_queries {
            answers[*i] = Answer::Adjacent(self.flags.present(*e).unwrap_or(false));
        }
        for i in &self.count_queries {
            answers[*i] = Answer::EdgeCount(self.edge_counter.count());
        }
        answers
    }
}

/// Answer one round's batch with one insertion-only pass, pre-refactor
/// architecture (the baseline counterpart of
/// [`crate::exec::answer_insertion_batch`]).
pub fn answer_insertion_batch_reference(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
) -> (Vec<Answer>, usize) {
    let mut pass = RefInsertionPass::build(batch, stream.len() as u64, pass_seed);
    stream.replay(&mut |u| {
        debug_assert!(u.is_insert(), "insertion executor fed a deletion");
        while pass.edge_cursor < pass.edge_targets.len()
            && pass.edge_targets[pass.edge_cursor].0 == pass.update_idx
        {
            let (_, qi) = pass.edge_targets[pass.edge_cursor];
            pass.edge_hits.push((qi, u.edge));
            pass.edge_cursor += 1;
        }
        pass.update_idx += 1;
        // The pre-refactor linear scan: every pending neighbor
        // sampler is visited on every update.
        for (_, v, s) in &mut pass.nbr_samplers {
            if u.edge.contains(*v) {
                s.offer(u.edge);
            }
        }
        pass.degree_counters.feed(u);
        pass.watchers.feed(u);
        pass.flags.feed(u);
        pass.edge_counter.feed(u);
    });
    let space = pass.space_bytes();
    (pass.answers(batch.len()), space)
}

/// Insertion-only streaming execution, pre-refactor architecture.
pub fn run_insertion_reference<A: RoundAdaptive>(
    mut alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;

        let (a, space) = answer_insertion_batch_reference(
            &batch,
            stream,
            split_seed(seed, report.passes as u64),
        );
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
    }
    (alg.output(), report)
}

/// Per-pass emulation state for the turnstile model (pre-refactor layout).
struct RefTurnstilePass {
    edge_samplers: Vec<(usize, L0Sampler)>,
    nbr_samplers: Vec<(usize, VertexId, L0Sampler)>,
    degree_counters: DegreeCounters,
    degree_queries: Vec<(usize, VertexId)>,
    flags: AdjacencyFlags,
    flag_queries: Vec<(usize, Edge)>,
    edge_counter: EdgeCounter,
    count_queries: Vec<usize>,
    nbr_by_vertex: HashMap<VertexId, Vec<usize>>,
}

impl RefTurnstilePass {
    fn build(batch: &[Query], n: usize, pass_seed: u64) -> Self {
        let mut edge_samplers = Vec::new();
        let mut nbr_samplers: Vec<(usize, VertexId, L0Sampler)> = Vec::new();
        let mut degree_vertices = Vec::new();
        let mut degree_queries = Vec::new();
        let mut flag_edges = Vec::new();
        let mut flag_queries = Vec::new();
        let mut count_queries = Vec::new();
        let mut nbr_by_vertex: HashMap<VertexId, Vec<usize>> = HashMap::new();
        for (i, q) in batch.iter().enumerate() {
            match *q {
                Query::EdgeCount => count_queries.push(i),
                Query::RandomEdge => {
                    edge_samplers.push((
                        i,
                        L0Sampler::for_edge_domain(n, split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::RandomNeighbor(v) => {
                    nbr_by_vertex.entry(v).or_default().push(nbr_samplers.len());
                    nbr_samplers.push((
                        i,
                        v,
                        L0Sampler::for_edge_domain(n, split_seed(pass_seed, i as u64)),
                    ));
                }
                Query::Degree(v) => {
                    degree_vertices.push(v);
                    degree_queries.push((i, v));
                }
                Query::IthNeighbor(..) => {
                    panic!(
                        "IthNeighbor is not available in the turnstile model \
                         (Definition 10 replaces it with RandomNeighbor)"
                    );
                }
                Query::Adjacent(u, v) => {
                    let e = Edge::new(u, v);
                    flag_edges.push(e);
                    flag_queries.push((i, e));
                }
            }
        }
        RefTurnstilePass {
            edge_samplers,
            nbr_samplers,
            degree_counters: DegreeCounters::new(degree_vertices),
            degree_queries,
            flags: AdjacencyFlags::new(flag_edges),
            flag_queries,
            edge_counter: EdgeCounter::new(),
            count_queries,
            nbr_by_vertex,
        }
    }

    fn space_bytes(&self) -> usize {
        self.edge_samplers
            .iter()
            .map(|(_, s)| s.space_bytes())
            .sum::<usize>()
            + self
                .nbr_samplers
                .iter()
                .map(|(_, _, s)| s.space_bytes())
                .sum::<usize>()
            + self.degree_counters.space_bytes()
            + self.flags.space_bytes()
            + self.edge_counter.space_bytes()
    }

    fn answers(self, batch_len: usize) -> Vec<Answer> {
        let mut answers = vec![Answer::Edge(None); batch_len];
        for (i, s) in &self.edge_samplers {
            answers[*i] = Answer::Edge(s.sample().map(Edge::from_key));
        }
        for (i, _, s) in &self.nbr_samplers {
            answers[*i] = Answer::Neighbor(s.sample().map(|k| VertexId(k as u32)));
        }
        for (i, v) in &self.degree_queries {
            answers[*i] = Answer::Degree(self.degree_counters.degree(*v).unwrap_or(0));
        }
        for (i, e) in &self.flag_queries {
            answers[*i] = Answer::Adjacent(self.flags.present(*e).unwrap_or(false));
        }
        for i in &self.count_queries {
            answers[*i] = Answer::EdgeCount(self.edge_counter.count());
        }
        answers
    }
}

/// Answer one round's batch with one turnstile pass, pre-refactor
/// architecture.
pub fn answer_turnstile_batch_reference(
    batch: &[Query],
    stream: &impl EdgeStream,
    pass_seed: u64,
) -> (Vec<Answer>, usize) {
    let mut pass = RefTurnstilePass::build(batch, stream.num_vertices(), pass_seed);
    stream.replay(&mut |u| {
        let d = u.delta as i64;
        for (_, s) in &mut pass.edge_samplers {
            s.update(u.edge.key(), d);
        }
        for endpoint in [u.edge.u(), u.edge.v()] {
            if let Some(ids) = pass.nbr_by_vertex.get(&endpoint) {
                let other = u.edge.other(endpoint).0 as u64;
                for &si in ids {
                    pass.nbr_samplers[si].2.update(other, d);
                }
            }
        }
        pass.degree_counters.feed(u);
        pass.flags.feed(u);
        pass.edge_counter.feed(u);
    });
    let space = pass.space_bytes();
    (pass.answers(batch.len()), space)
}

/// Turnstile streaming execution, pre-refactor architecture.
pub fn run_turnstile_reference<A: RoundAdaptive>(
    mut alg: A,
    stream: &impl EdgeStream,
    seed: u64,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;

        let (a, space) = answer_turnstile_batch_reference(
            &batch,
            stream,
            split_seed(seed, report.passes as u64),
        );
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
    }
    (alg.output(), report)
}
