//! Execution policy: **injected** thread/pinning decisions for the
//! sharded and broadcast executors.
//!
//! Until PR 7 every executor decided "threads or not" by reading the
//! `SGS_SHARD_THREADS` environment variable at pass time. That put a
//! process-global mutable toggle on the hot path, and — worse — forced
//! the test suite to `set_var`/`remove_var` around assertions, which is
//! undefined behavior on glibc once the parallel test harness itself is
//! multi-threaded. Policy is now a plain value threaded through the
//! `*_with_exec` entry points:
//!
//! * **Library layers never read the environment.** The executors and
//!   benches take an [`ExecPolicy`]; tests exercise both schedules by
//!   passing [`ExecPolicy::serial`] / [`ExecPolicy::threaded`] directly.
//! * **The CLI is the only env parse.** `sgs` maps `SGS_SHARD_THREADS`
//!   (`0`/`1`, unset = auto) to a policy once at startup via
//!   [`ExecPolicy::from_env`], preserving the variable's documented
//!   behavior for operators.
//! * **Pinning is policy too.** [`ExecPolicy::pin`] asks persistent
//!   shard workers ([`crate::runtime::ShardRuntime`]) to bind themselves
//!   to cores with raw `sched_setaffinity` — no external crates; a
//!   silent no-op on non-Linux targets and on hosts that refuse the
//!   syscall. Pinning affects *where* work runs, never *what* it
//!   computes, so every equivalence guarantee is unaffected.

/// How the sharded/broadcast executors schedule their shard workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ThreadMode {
    /// Thread when the host has more than one core (the pre-PR-7
    /// unset-env behavior).
    #[default]
    Auto,
    /// Always run the deterministic single-thread schedule (inline
    /// shard loop / cooperative ring round-robin).
    Serial,
    /// Always run the threaded schedule, even on one core — the test
    /// suite's way of exercising the parallel path everywhere.
    Threaded,
}

/// Injected execution policy for one run: scheduling mode plus worker
/// core-pinning. The answers a pass produces are identical under every
/// policy — this value only decides *where* the work runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ExecPolicy {
    /// Thread-or-not decision.
    pub mode: ThreadMode,
    /// Pin persistent shard workers round-robin over the host's cores
    /// (Linux only; ignored by the scoped-thread and serial paths,
    /// which have no long-lived workers worth binding).
    pub pin: bool,
}

impl ExecPolicy {
    /// Host-adaptive default (thread iff multi-core), no pinning.
    pub fn auto() -> Self {
        ExecPolicy::default()
    }

    /// Force the single-thread schedule.
    pub fn serial() -> Self {
        ExecPolicy {
            mode: ThreadMode::Serial,
            pin: false,
        }
    }

    /// Force the threaded schedule (unpinned).
    pub fn threaded() -> Self {
        ExecPolicy {
            mode: ThreadMode::Threaded,
            pin: false,
        }
    }

    /// Same policy with worker core-pinning requested.
    pub fn with_pin(mut self) -> Self {
        self.pin = true;
        self
    }

    /// Whether a pass with `parties` independent workers should use the
    /// threaded schedule under this policy. One party never threads —
    /// there is nothing to overlap.
    pub fn use_threads(&self, parties: usize) -> bool {
        if parties <= 1 {
            return false;
        }
        match self.mode {
            ThreadMode::Serial => false,
            ThreadMode::Threaded => true,
            ThreadMode::Auto => host_cores() > 1,
        }
    }

    /// Map the operator-facing `SGS_SHARD_THREADS` variable (`0` = serial,
    /// `1` = threaded, unset/other = auto) to a policy. **CLI layer
    /// only** — library code takes the resulting value; nothing below
    /// the binary reads the environment.
    pub fn from_env() -> Self {
        match std::env::var("SGS_SHARD_THREADS").ok().as_deref() {
            Some("0") => ExecPolicy::serial(),
            Some("1") => ExecPolicy::threaded(),
            _ => ExecPolicy::auto(),
        }
    }
}

/// The host's available parallelism (1 when unknown).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Bind the calling thread to one CPU. Returns whether the kernel
/// accepted the mask; `false` (and no effect) on non-Linux targets, on
/// out-of-range cores, and when the syscall is refused (containers with
/// restricted affinity). Purely a placement hint — correctness never
/// depends on it.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    // `cpu_set_t` is 1024 bits; build the single-core mask as u64 words
    // and hand it straight to the raw syscall wrapper that glibc (and
    // musl) already export — std links libc, so no new dependency.
    const WORDS: usize = 1024 / 64;
    if core >= 1024 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // pid 0 = the calling thread.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux stub: pinning is a silent no-op.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_ignore_host_shape() {
        for parties in [2usize, 4, 16] {
            assert!(!ExecPolicy::serial().use_threads(parties));
            assert!(ExecPolicy::threaded().use_threads(parties));
        }
    }

    #[test]
    fn one_party_never_threads() {
        for policy in [
            ExecPolicy::auto(),
            ExecPolicy::serial(),
            ExecPolicy::threaded(),
            ExecPolicy::threaded().with_pin(),
        ] {
            assert!(!policy.use_threads(1));
            assert!(!policy.use_threads(0));
        }
    }

    #[test]
    fn auto_follows_host_cores() {
        assert_eq!(
            ExecPolicy::auto().use_threads(4),
            host_cores() > 1,
            "auto mode must mirror available_parallelism"
        );
    }

    #[test]
    fn pinning_to_current_core_or_rejection_is_clean() {
        // On a permissive Linux host pinning core 0 succeeds; sandboxes
        // may refuse the syscall, and non-Linux always reports false.
        // Either way the call must not panic and must tell the truth —
        // a `true` here means the thread really is bound (re-binding to
        // the same core again must then also succeed).
        let first = pin_current_thread(0);
        if first {
            assert!(pin_current_thread(0));
        }
        assert!(!pin_current_thread(100_000), "out-of-range core rejected");
    }
}
