//! The **QueryRouter**: shared batch→stream routing for the pass
//! emulators.
//!
//! One round of a [`crate::round::Parallel`] sampler bank merges the
//! query batches of thousands of independent trials (Theorem 17's
//! "parallel for"), so the per-*update* work of a streaming pass must not
//! scale with the number of pending queries. The router ingests a whole
//! batch once and builds flat hash-bucket indexes over it:
//!
//! * a **per-vertex index** unifying every vertex-keyed query kind —
//!   `f2` degree counts, indexed `f3` watchers, relaxed `f3` neighbor
//!   samplers — so each stream update probes *one* table per endpoint and
//!   then touches only the queries actually registered on that vertex;
//! * a **per-edge index** for `f4` adjacency flags (one probe per
//!   update);
//! * **sorted position cursors** for insertion-model `f1` (uniform
//!   position sampling: O(1) amortized per update, O(hits) when targets
//!   fire);
//! * dense slot lists for `f1`/`EdgeCount` so executors can keep their
//!   model-specific sampler state (reservoirs, ℓ₀-sketches) in flat
//!   arrays aligned with the router's pooled ordering.
//!
//! Every stream update therefore costs O(1 + hits) independent of batch
//! size — previously each update paid two SipHash probes per tracked
//! structure plus a linear scan over all pending neighbor samplers. The
//! routing layer contributes **no algorithm randomness**: it only decides
//! *where* each update is delivered; which uniform sample each query
//! receives is still determined by the executors' per-query seeds, which
//! is what keeps the router-based executors distribution-identical to the
//! reference executors (see `crate::reference` and the
//! `router_equivalence` integration tests).

use crate::query::{Answer, Query};
use sgs_graph::{Edge, VertexId};
use sgs_stream::flat::{FlatIndex, ABSENT};
use sgs_stream::persist::{Decoder, Encoder, PersistResult};
use sgs_stream::EdgeUpdate;

/// Which streaming model the batch is routed for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterMode {
    /// Insertion-only pass (Theorem 9): indexed `f3` allowed.
    Insertion,
    /// Turnstile pass (Theorem 11): indexed `f3` is a protocol error.
    Turnstile,
}

/// Per-vertex-group hot state: everything the feed path needs after one
/// index probe, packed together so an endpoint match costs one record
/// access instead of four scattered array reads.
#[derive(Clone, Copy, Debug, Default)]
struct VertexGroup {
    /// Running degree (`f2`).
    deg: i64,
    /// Stream arrivals seen on this vertex (watcher clock).
    seen: u64,
    /// Live watcher range into `watch_entries`: `watch_start..watch_live`,
    /// shrinking from the top as entries are consumed.
    watch_start: u32,
    watch_live: u32,
    /// Pooled neighbor-sampler range into `nbr_slots`.
    nbr_start: u32,
    nbr_end: u32,
}

/// Per-pass routing state for one query batch.
///
/// The router owns the deterministic per-key state (degree counts,
/// watcher progress, adjacency flags, the edge counter); executors own
/// the per-query *sampler* state (reservoirs / ℓ₀-sketches) in arrays
/// aligned with [`QueryRouter::neighbor_slots`] / the `f1` slot list,
/// because that state differs per model.
pub struct QueryRouter {
    batch_len: usize,
    /// Slots asking `EdgeCount`, in batch order.
    count_slots: Vec<u32>,
    /// Slots asking `RandomEdge` (`f1`), in batch order.
    edge_slots: Vec<u32>,

    /// Vertex id → vertex group.
    vertices: FlatIndex,
    /// Group → vertex id (answer-time reconstruction).
    group_vertex: Vec<u32>,

    /// Hot per-vertex-group state, one cache-line-friendly record per
    /// group: the running `f2` degree, the watcher arrival counter and
    /// live range, and the pooled neighbor-sampler range. The feed path
    /// touches exactly one record per matched endpoint.
    groups: Vec<VertexGroup>,
    /// Flat `(group, slot)` pairs for `f2` answer distribution (no
    /// pooling needed: distribution order is irrelevant).
    deg_pairs: Vec<(u32, u32)>,

    /// Relaxed `f3`: pooled sampler slots, grouped by vertex; entry `i`
    /// of the pool is sampler index `i` for the owning executor.
    nbr_slots: Vec<u32>,

    /// Indexed `f3`: pooled `(awaited arrival, slot)` per vertex group,
    /// each group sorted descending so the live tail is next due.
    watch_entries: Vec<(u64, u32)>,
    watch_hits: Vec<(u32, VertexId)>,

    /// `f4`: edge key → pair group; last-update-wins presence per group,
    /// plus flat `(group, slot)` pairs for answer distribution.
    pairs: FlatIndex,
    flag_present: Vec<bool>,
    flag_pairs: Vec<(u32, u32)>,

    /// Running edge count `m`.
    m: i64,

    /// Rebuild scratch (grouping intermediates), retained across
    /// [`QueryRouter::rebuild`] calls so an arena-pooled router reaches
    /// zero per-round allocations after warm-up.
    scratch_nbr: Vec<(u32, u32)>,
    scratch_watch: Vec<(u32, (u64, u32))>,
    scratch_sizes: Vec<u32>,
}

impl Default for QueryRouter {
    fn default() -> Self {
        Self::empty()
    }
}

impl QueryRouter {
    /// An empty router holding no batch — the pooled starting point; fill
    /// it with [`QueryRouter::rebuild`].
    pub fn empty() -> Self {
        QueryRouter {
            batch_len: 0,
            count_slots: Vec::new(),
            edge_slots: Vec::new(),
            vertices: FlatIndex::default(),
            group_vertex: Vec::new(),
            groups: Vec::new(),
            deg_pairs: Vec::new(),
            nbr_slots: Vec::new(),
            watch_entries: Vec::new(),
            watch_hits: Vec::new(),
            pairs: FlatIndex::default(),
            flag_present: Vec::new(),
            flag_pairs: Vec::new(),
            m: 0,
            scratch_nbr: Vec::new(),
            scratch_watch: Vec::new(),
            scratch_sizes: Vec::new(),
        }
    }

    /// Ingest a batch and build the routing indexes.
    pub fn build(batch: &[Query], mode: RouterMode) -> Self {
        let mut r = Self::empty();
        r.rebuild(batch, mode);
        r
    }

    /// Re-ingest a batch **in place**, reusing every allocation from the
    /// previous round: the arena contract (ROADMAP "Indexed-pass build
    /// cost"). After one warm-up round per batch shape, rebuilding
    /// touches no heap — [`crate::arena::RouterArena`] counts growth
    /// events to prove it.
    pub fn rebuild(&mut self, batch: &[Query], mode: RouterMode) {
        // Counting prescan: exact capacities, no re-growth while
        // classifying tens of thousands of merged queries.
        let (mut n_count, mut n_edge, mut n_deg, mut n_nbr, mut n_watch, mut n_flag) =
            (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
        for q in batch {
            match q {
                Query::EdgeCount => n_count += 1,
                Query::RandomEdge => n_edge += 1,
                Query::Degree(_) => n_deg += 1,
                Query::RandomNeighbor(_) => n_nbr += 1,
                Query::IthNeighbor(..) => n_watch += 1,
                Query::Adjacent(..) => n_flag += 1,
            }
        }
        self.batch_len = batch.len();
        self.m = 0;
        self.count_slots.clear();
        self.count_slots.reserve(n_count);
        self.edge_slots.clear();
        self.edge_slots.reserve(n_edge);

        // One shared vertex index across all vertex-keyed kinds: per
        // update, a single probe routes to degree counts, watchers, and
        // neighbor samplers at once. Distinct vertices are bounded by
        // `n`, which is typically far below the raw query count
        // (thousands of trials ask about the same few hundred vertices),
        // so start small and let the index grow: a compact table stays
        // cache-resident on the per-update probe path.
        self.vertices.clear();
        self.vertices.reserve((n_deg + n_nbr + n_watch).min(2048));
        self.group_vertex.clear();
        self.deg_pairs.clear();
        self.deg_pairs.reserve(n_deg);
        let mut nbr_grouped = std::mem::take(&mut self.scratch_nbr);
        nbr_grouped.clear();
        nbr_grouped.reserve(n_nbr);
        let mut watch_grouped = std::mem::take(&mut self.scratch_watch);
        watch_grouped.clear();
        watch_grouped.reserve(n_watch);
        // Per-edge index for f4; distinct pairs are usually close to the
        // raw count (each trial probes its own sampled vertex set).
        self.pairs.clear();
        self.pairs.reserve(n_flag);
        self.flag_pairs.clear();
        self.flag_pairs.reserve(n_flag);
        self.watch_hits.clear();

        // Single classification pass: group keys as we see them.
        let vertices = &mut self.vertices;
        let group_vertex = &mut self.group_vertex;
        let vertex_group =
            |vertices: &mut FlatIndex, group_vertex: &mut Vec<u32>, v: VertexId| -> u32 {
                let g = vertices.insert_or_get(v.0 as u64);
                if g as usize == group_vertex.len() {
                    group_vertex.push(v.0);
                }
                g
            };
        for (i, q) in batch.iter().enumerate() {
            let slot = i as u32;
            match *q {
                Query::EdgeCount => self.count_slots.push(slot),
                Query::RandomEdge => self.edge_slots.push(slot),
                Query::Degree(v) => {
                    let g = vertex_group(vertices, group_vertex, v);
                    self.deg_pairs.push((g, slot));
                }
                Query::RandomNeighbor(v) => {
                    let g = vertex_group(vertices, group_vertex, v);
                    nbr_grouped.push((g, slot));
                }
                Query::IthNeighbor(v, idx) => {
                    if mode == RouterMode::Turnstile {
                        panic!(
                            "IthNeighbor is not available in the turnstile model \
                             (Definition 10 replaces it with RandomNeighbor)"
                        );
                    }
                    let g = vertex_group(vertices, group_vertex, v);
                    watch_grouped.push((g, (idx, slot)));
                }
                Query::Adjacent(u, v) => {
                    let g = self.pairs.insert_or_get(Edge::new(u, v).key());
                    self.flag_pairs.push((g, slot));
                }
            }
        }
        let n_groups = self.group_vertex.len();
        let pair_groups = self.pairs.len();

        self.groups.clear();
        self.groups.resize(n_groups, VertexGroup::default());

        // Relaxed-f3 sampler slots need CSR pooling: feed dispatches by
        // vertex group range.
        {
            let sizes = &mut self.scratch_sizes;
            sizes.clear();
            sizes.resize(n_groups, 0);
            for &(g, _) in &nbr_grouped {
                sizes[g as usize] += 1;
            }
            let mut acc = 0u32;
            for (st, &c) in self.groups.iter_mut().zip(sizes.iter()) {
                st.nbr_start = acc;
                acc += c;
                st.nbr_end = st.nbr_start;
            }
            self.nbr_slots.clear();
            self.nbr_slots.resize(nbr_grouped.len(), 0);
            for &(g, s) in &nbr_grouped {
                let st = &mut self.groups[g as usize];
                self.nbr_slots[st.nbr_end as usize] = s;
                st.nbr_end += 1;
            }
        }

        // Watchers carry payloads; pool then sort each group descending
        // so the live tail is the next-due entry.
        {
            let sizes = &mut self.scratch_sizes;
            sizes.clear();
            sizes.resize(n_groups, 0);
            for &(g, _) in &watch_grouped {
                sizes[g as usize] += 1;
            }
            let mut acc = 0u32;
            for (st, &c) in self.groups.iter_mut().zip(sizes.iter()) {
                st.watch_start = acc;
                acc += c;
                st.watch_live = st.watch_start;
            }
            self.watch_entries.clear();
            self.watch_entries.resize(watch_grouped.len(), (0, 0));
            for &(g, p) in &watch_grouped {
                let st = &mut self.groups[g as usize];
                self.watch_entries[st.watch_live as usize] = p;
                st.watch_live += 1;
            }
            for st in &self.groups {
                self.watch_entries[st.watch_start as usize..st.watch_live as usize]
                    .sort_unstable_by(|a, b| b.cmp(a));
            }
        }

        self.flag_present.clear();
        self.flag_present.resize(pair_groups, false);

        self.scratch_nbr = nbr_grouped;
        self.scratch_watch = watch_grouped;
    }

    /// Bytes of backing storage currently allocated across every pooled
    /// buffer (capacities, not lengths): what the arena's
    /// no-growth-after-warm-up accounting watches. Distinct from
    /// [`QueryRouter::space_bytes`], which reports the *semantic*
    /// footprint of Theorems 9/11.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.count_slots.capacity() * size_of::<u32>()
            + self.edge_slots.capacity() * size_of::<u32>()
            + self.vertices.heap_bytes()
            + self.group_vertex.capacity() * size_of::<u32>()
            + self.groups.capacity() * size_of::<VertexGroup>()
            + self.deg_pairs.capacity() * size_of::<(u32, u32)>()
            + self.nbr_slots.capacity() * size_of::<u32>()
            + self.watch_entries.capacity() * size_of::<(u64, u32)>()
            + self.watch_hits.capacity() * size_of::<(u32, VertexId)>()
            + self.pairs.heap_bytes()
            + self.flag_present.capacity()
            + self.flag_pairs.capacity() * size_of::<(u32, u32)>()
            + self.scratch_nbr.capacity() * size_of::<(u32, u32)>()
            + self.scratch_watch.capacity() * size_of::<(u32, (u64, u32))>()
            + self.scratch_sizes.capacity() * size_of::<u32>()
    }

    /// Number of queries in the routed batch.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Slots asking `RandomEdge`, in batch order: the executor keeps one
    /// sampler per entry, aligned with this list.
    pub fn edge_slots(&self) -> &[u32] {
        &self.edge_slots
    }

    /// Pooled `RandomNeighbor` slots (grouped by vertex): the executor
    /// keeps one sampler per entry, aligned with this list.
    pub fn neighbor_slots(&self) -> &[u32] {
        &self.nbr_slots
    }

    /// The pooled neighbor-sampler range of every vertex group that has
    /// one, in ascending lane order — the cohort map for a skip-ahead
    /// reservoir bank (`ReservoirBank::bind_cohorts`): each range is
    /// exactly the lane set a feed delivery hands to `on_neighbor_range`,
    /// so all lanes of a range always advance together.
    pub fn neighbor_group_ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.groups
            .iter()
            .filter(|st| st.nbr_end > st.nbr_start)
            .map(|st| (st.nbr_start, st.nbr_end))
    }

    /// The vertex each pooled neighbor-sampler entry listens on.
    pub fn neighbor_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.groups
            .iter()
            .zip(&self.group_vertex)
            .flat_map(|(st, &v)| {
                std::iter::repeat_n(VertexId(v), (st.nbr_end - st.nbr_start) as usize)
            })
    }

    /// Deliver one matched endpoint to its vertex group: degree, watcher
    /// clock, and pooled neighbor-sampler hits. Shared verbatim by the
    /// scalar [`QueryRouter::feed`] and the blocked
    /// [`QueryRouter::feed_block`] so the two paths cannot drift.
    #[inline]
    fn deliver_endpoint(
        groups: &mut [VertexGroup],
        watch_entries: &[(u64, u32)],
        watch_hits: &mut Vec<(u32, VertexId)>,
        g: u32,
        other: VertexId,
        delta: i64,
        mut on_neighbor_range: impl FnMut(u32, u32),
    ) {
        let st = &mut groups[g as usize];
        st.deg += delta;
        // Indexed f3 watchers (insertion mode only populates them).
        st.seen += 1;
        while st.watch_live > st.watch_start {
            let (idx, slot) = watch_entries[st.watch_live as usize - 1];
            if idx == st.seen {
                watch_hits.push((slot, other));
                st.watch_live -= 1;
            } else if idx < st.seen {
                // Index 0 or duplicates already consumed.
                st.watch_live -= 1;
            } else {
                break;
            }
        }
        // Relaxed f3 samplers owned by the executor: delivered as the
        // pooled range, not lane by lane, so a skip-ahead reservoir bank
        // can run its countdown compares over the contiguous lanes in one
        // call (and an ℓ₀ consumer just loops the range — same order the
        // old per-lane callback walked).
        if st.nbr_end > st.nbr_start {
            on_neighbor_range(st.nbr_start, st.nbr_end);
        }
    }

    /// Deliver one stream update to every routed structure except the
    /// model-specific `f1`/`f3` samplers; for those, `on_neighbor_range`
    /// receives the contiguous pooled sampler range `start..end`
    /// (aligned with [`QueryRouter::neighbor_slots`]) registered on an
    /// endpoint of the update.
    #[inline]
    pub fn feed(&mut self, u: EdgeUpdate, mut on_neighbor_range: impl FnMut(u32, u32)) {
        let delta = u.delta as i64;
        let (a, b) = u.edge.endpoints();
        for (endpoint, other) in [(a, b), (b, a)] {
            if let Some(g) = self.vertices.get(endpoint.0 as u64) {
                Self::deliver_endpoint(
                    &mut self.groups,
                    &self.watch_entries,
                    &mut self.watch_hits,
                    g,
                    other,
                    delta,
                    &mut on_neighbor_range,
                );
            }
        }
        if let Some(g) = self.pairs.get(u.edge.key()) {
            self.flag_present[g as usize] = u.is_insert();
        }
        self.m += delta;
    }

    /// Deliver a block of stream updates: for each chunk of 8 updates,
    /// resolve all 16 endpoint probes and 8 edge-key probes through the
    /// software-pipelined [`FlatIndex::probe_array`] (keys staged in
    /// registers, hash-ahead loads), then drain the chunk in stream
    /// order against the resolved groups. Byte-identical to feeding each
    /// update through [`QueryRouter::feed`] — the pipelining changes
    /// *when* keys are hashed, never what is delivered or in which
    /// order. `on_neighbor_range(j, start, end)` receives the update's
    /// index within the block alongside the pooled sampler range, so
    /// executors can recover the offered edge and hand the whole
    /// contiguous lane range to their sampler bank.
    pub fn feed_block(
        &mut self,
        block: &[EdgeUpdate],
        mut on_neighbor_range: impl FnMut(usize, u32, u32),
    ) {
        const B: usize = 8;
        let mut vkeys = [0u64; 2 * B];
        let mut ekeys = [0u64; B];
        let mut vgroups = [ABSENT; 2 * B];
        let mut egroups = [ABSENT; B];
        for (c, chunk) in block.chunks(B).enumerate() {
            for (t, u) in chunk.iter().enumerate() {
                let (a, b) = u.edge.endpoints();
                vkeys[2 * t] = a.0 as u64;
                vkeys[2 * t + 1] = b.0 as u64;
                ekeys[t] = u.edge.key();
            }
            // Remainder chunks probe a few stale lanes; the results are
            // never read, and a wasted probe is cheaper than a second
            // remainder code path.
            self.vertices.probe_array(&vkeys, &mut vgroups);
            self.pairs.probe_array(&ekeys, &mut egroups);
            for (t, u) in chunk.iter().enumerate() {
                let j = c * B + t;
                let delta = u.delta as i64;
                let (a, b) = u.edge.endpoints();
                for (key_idx, other) in [(2 * t, b), (2 * t + 1, a)] {
                    let g = vgroups[key_idx];
                    if g != ABSENT {
                        Self::deliver_endpoint(
                            &mut self.groups,
                            &self.watch_entries,
                            &mut self.watch_hits,
                            g,
                            other,
                            delta,
                            |s, e| on_neighbor_range(j, s, e),
                        );
                    }
                }
                let ge = egroups[t];
                if ge != ABSENT {
                    self.flag_present[ge as usize] = u.is_insert();
                }
                self.m += delta;
            }
        }
    }

    /// Serialize the mutable feed state — per-group degree counters,
    /// watcher clocks and live ranges, recorded watcher hits, adjacency
    /// flags, and the running edge count — into `enc`. The routing
    /// *geometry* (indexes, slot lists, pooled ranges) is not included:
    /// it is a deterministic function of the batch, rebuilt by
    /// [`QueryRouter::rebuild`], so a checkpoint restores feed state
    /// into an identically rebuilt router.
    pub(crate) fn encode_feed_state(&self, enc: &mut Encoder) {
        enc.u64(self.groups.len() as u64);
        for st in &self.groups {
            enc.i64(st.deg);
            enc.u64(st.seen);
            enc.u32(st.watch_live);
        }
        enc.u64(self.watch_hits.len() as u64);
        for &(slot, v) in &self.watch_hits {
            enc.u32(slot);
            enc.u32(v.0);
        }
        enc.u64(self.flag_present.len() as u64);
        for &p in &self.flag_present {
            enc.u8(p as u8);
        }
        enc.i64(self.m);
    }

    /// Restore feed state captured by [`QueryRouter::encode_feed_state`]
    /// into a router freshly rebuilt over the same batch. Validates that
    /// the recorded shape matches this router's geometry.
    pub(crate) fn restore_feed_state(&mut self, dec: &mut Decoder) -> PersistResult<()> {
        let groups = dec.count(20, "router groups")?;
        if groups != self.groups.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {groups} vertex groups, router has {}",
                self.groups.len()
            )));
        }
        for (i, st) in self.groups.iter_mut().enumerate() {
            let deg = dec.i64("group degree")?;
            let seen = dec.u64("group arrivals")?;
            let watch_live = dec.u32("group watch cursor")?;
            // Feed only shrinks the live range from its rebuilt top.
            if watch_live < st.watch_start || watch_live > st.watch_live {
                return Err(dec.corrupt(format!(
                    "group {i} watch cursor {watch_live} outside {}..={}",
                    st.watch_start, st.watch_live
                )));
            }
            st.deg = deg;
            st.seen = seen;
            st.watch_live = watch_live;
        }
        let hits = dec.count(8, "watcher hits")?;
        let mut watch_hits = Vec::with_capacity(hits);
        for _ in 0..hits {
            let slot = dec.u32("watcher slot")?;
            if slot as usize >= self.batch_len {
                return Err(dec.corrupt(format!(
                    "watcher slot {slot} exceeds batch of {}",
                    self.batch_len
                )));
            }
            watch_hits.push((slot, VertexId(dec.u32("watcher vertex")?)));
        }
        let flags = dec.count(1, "adjacency flags")?;
        if flags != self.flag_present.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {flags} adjacency flags, router has {}",
                self.flag_present.len()
            )));
        }
        for p in self.flag_present.iter_mut() {
            *p = match dec.u8("adjacency flag")? {
                0 => false,
                1 => true,
                _ => return Err(dec.corrupt("adjacency flag byte is not 0/1")),
            };
        }
        let m = dec.i64("edge count")?;
        self.watch_hits = watch_hits;
        self.m = m;
        Ok(())
    }

    /// Distribute the router-owned answers (`EdgeCount`, `f2`, indexed
    /// `f3`, `f4`) into a batch-wide answer vector. The executor fills
    /// `f1` and relaxed `f3` slots from its own samplers.
    pub fn distribute(&self, answers: &mut [Answer]) {
        debug_assert_eq!(answers.len(), self.batch_len);
        let m = self.m.max(0) as usize;
        for &s in &self.count_slots {
            answers[s as usize] = Answer::EdgeCount(m);
        }
        for &(g, s) in &self.deg_pairs {
            answers[s as usize] = Answer::Degree(self.groups[g as usize].deg.max(0) as usize);
        }
        // Watchers: default None, then apply recorded hits.
        for &(_, slot) in &self.watch_entries {
            answers[slot as usize] = Answer::Neighbor(None);
        }
        for &(slot, v) in &self.watch_hits {
            answers[slot as usize] = Answer::Neighbor(Some(v));
        }
        for &(g, s) in &self.flag_pairs {
            answers[s as usize] = Answer::Adjacent(self.flag_present[g as usize]);
        }
    }

    /// Semantic bytes of router state (the `O(q log n)` term of
    /// Theorems 9/11 for the non-sampler kinds; executors add their
    /// sampler footprints).
    pub fn space_bytes(&self) -> usize {
        self.count_slots.len() * 4
            + self.edge_slots.len() * 4
            + self.group_vertex.len() * (4 + 8) // vertex + degree counter
            + self.deg_pairs.len() * 8
            + self.nbr_slots.len() * 4
            + self.watch_entries.len() * 12
            + self.flag_present.len() * 9
            + self.flag_pairs.len() * 8
            + 8 // edge counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn routes_mixed_batch_and_distributes_answers() {
        let batch = vec![
            Query::EdgeCount,
            Query::Degree(v(1)),
            Query::Degree(v(2)),
            Query::Degree(v(1)), // duplicate vertex: same group
            Query::Adjacent(v(1), v(2)),
            Query::Adjacent(v(2), v(3)),
            Query::IthNeighbor(v(1), 1),
            Query::RandomNeighbor(v(2)),
            Query::RandomEdge,
        ];
        let mut r = QueryRouter::build(&batch, RouterMode::Insertion);
        assert_eq!(r.edge_slots(), &[8]);
        assert_eq!(r.neighbor_slots(), &[7]);
        let nbr_verts: Vec<VertexId> = r.neighbor_vertices().collect();
        assert_eq!(nbr_verts, vec![v(2)]);

        let mut nbr_hits = Vec::new();
        let collect = |hits: &mut Vec<usize>, r: &mut QueryRouter, u: EdgeUpdate| {
            let mut local = Vec::new();
            r.feed(u, |s, e| local.extend(s as usize..e as usize));
            hits.extend(local);
        };
        collect(
            &mut nbr_hits,
            &mut r,
            EdgeUpdate::insert(Edge::from((1, 2))),
        );
        collect(
            &mut nbr_hits,
            &mut r,
            EdgeUpdate::insert(Edge::from((2, 3))),
        );
        collect(
            &mut nbr_hits,
            &mut r,
            EdgeUpdate::insert(Edge::from((4, 5))),
        );
        assert_eq!(nbr_hits, vec![0, 0]); // vertex 2 touched twice

        let mut answers = vec![Answer::Edge(None); batch.len()];
        r.distribute(&mut answers);
        assert_eq!(answers[0], Answer::EdgeCount(3));
        assert_eq!(answers[1], Answer::Degree(1));
        assert_eq!(answers[2], Answer::Degree(2));
        assert_eq!(answers[3], Answer::Degree(1));
        assert_eq!(answers[4], Answer::Adjacent(true));
        assert_eq!(answers[5], Answer::Adjacent(true));
        assert_eq!(answers[6], Answer::Neighbor(Some(v(2))));
        // Executor-owned slots untouched by distribute.
        assert_eq!(answers[7], Answer::Edge(None));
        assert_eq!(answers[8], Answer::Edge(None));
    }

    #[test]
    fn deletions_clear_flags_and_degrees() {
        let batch = vec![Query::Degree(v(0)), Query::Adjacent(v(0), v(1))];
        let mut r = QueryRouter::build(&batch, RouterMode::Turnstile);
        let e = Edge::from((0, 1));
        r.feed(EdgeUpdate::insert(e), |_, _| {});
        r.feed(EdgeUpdate::delete(e), |_, _| {});
        let mut answers = vec![Answer::Edge(None); 2];
        r.distribute(&mut answers);
        assert_eq!(answers[0], Answer::Degree(0));
        assert_eq!(answers[1], Answer::Adjacent(false));
    }

    #[test]
    #[should_panic(expected = "IthNeighbor is not available")]
    fn turnstile_mode_rejects_indexed_neighbors() {
        let _ = QueryRouter::build(&[Query::IthNeighbor(v(0), 1)], RouterMode::Turnstile);
    }

    #[test]
    fn watcher_duplicate_indices_both_answered() {
        let batch = vec![
            Query::IthNeighbor(v(0), 2),
            Query::IthNeighbor(v(0), 2),
            Query::IthNeighbor(v(0), 9),
        ];
        let mut r = QueryRouter::build(&batch, RouterMode::Insertion);
        r.feed(EdgeUpdate::insert(Edge::from((0, 5))), |_, _| {});
        r.feed(EdgeUpdate::insert(Edge::from((0, 6))), |_, _| {});
        let mut answers = vec![Answer::Edge(None); 3];
        r.distribute(&mut answers);
        assert_eq!(answers[0], Answer::Neighbor(Some(v(6))));
        assert_eq!(answers[1], Answer::Neighbor(Some(v(6))));
        assert_eq!(answers[2], Answer::Neighbor(None));
    }

    #[test]
    fn rebuild_reuses_allocations_and_matches_fresh_build() {
        let big: Vec<Query> = (0..400u32)
            .flat_map(|i| {
                [
                    Query::Degree(v(i % 40)),
                    Query::RandomNeighbor(v(i % 37)),
                    Query::Adjacent(v(i % 23), v(100 + i % 29)),
                    Query::IthNeighbor(v(i % 31), (i as u64 % 5) + 1),
                    Query::RandomEdge,
                ]
            })
            .collect();
        let small = vec![Query::EdgeCount, Query::Degree(v(3))];
        // Warm-up cycle: one rebuild per shape the run will see.
        let mut pooled = QueryRouter::build(&big, RouterMode::Insertion);
        pooled.rebuild(&small, RouterMode::Insertion);
        let warm = pooled.heap_bytes();
        // Every later round over known shapes is allocation-stable.
        for _ in 0..3 {
            pooled.rebuild(&big, RouterMode::Insertion);
            assert_eq!(pooled.heap_bytes(), warm, "big rebuild reallocated");
            pooled.rebuild(&small, RouterMode::Insertion);
            assert_eq!(pooled.heap_bytes(), warm, "small rebuild reallocated");
        }
        pooled.rebuild(&big, RouterMode::Insertion);

        // The rebuilt router must behave exactly like a fresh build.
        let mut fresh = QueryRouter::build(&big, RouterMode::Insertion);
        let updates = [
            EdgeUpdate::insert(Edge::from((3, 14))),
            EdgeUpdate::insert(Edge::from((14, 23))),
            EdgeUpdate::insert(Edge::from((2, 108))),
            EdgeUpdate::delete(Edge::from((14, 23))),
        ];
        let (mut ha, mut hb) = (Vec::new(), Vec::new());
        for u in updates {
            pooled.feed(u, |s, e| ha.extend(s..e));
            fresh.feed(u, |s, e| hb.extend(s..e));
        }
        assert_eq!(ha, hb);
        let mut aa = vec![Answer::Edge(None); big.len()];
        let mut ab = vec![Answer::Edge(None); big.len()];
        pooled.distribute(&mut aa);
        fresh.distribute(&mut ab);
        assert_eq!(aa, ab);
    }

    #[test]
    fn feed_block_matches_scalar_feed_at_every_block_size() {
        // Mixed batch, turnstile-style update sequence with deletions and
        // unmatched endpoints; the blocked path must produce identical
        // router state, identical neighbor-hit sequences (per update, in
        // order), and identical answers for every block size including
        // remainder blocks and the empty block.
        let batch: Vec<Query> = (0..60u32)
            .flat_map(|i| {
                [
                    Query::Degree(v(i % 9)),
                    Query::RandomNeighbor(v(i % 11)),
                    Query::Adjacent(v(i % 5), v(20 + i % 7)),
                    Query::IthNeighbor(v(i % 6), (i as u64 % 3) + 1),
                ]
            })
            .chain([Query::EdgeCount])
            .collect();
        let updates: Vec<EdgeUpdate> = (0..97u32)
            .map(|i| {
                let e = Edge::from((i % 13, 13 + i % 17));
                if i % 5 == 4 {
                    EdgeUpdate::delete(e)
                } else {
                    EdgeUpdate::insert(e)
                }
            })
            .collect();
        let mut scalar = QueryRouter::build(&batch, RouterMode::Insertion);
        let mut scalar_hits = Vec::new();
        for (j, &u) in updates.iter().enumerate() {
            scalar.feed(u, |s, e| scalar_hits.extend((s..e).map(|i| (j, i))));
        }
        let mut scalar_answers = vec![Answer::Edge(None); batch.len()];
        scalar.distribute(&mut scalar_answers);

        for block in [1usize, 2, 7, 16, 64, 97, 200] {
            let mut blocked = QueryRouter::build(&batch, RouterMode::Insertion);
            let mut blocked_hits = Vec::new();
            for (c, chunk) in updates.chunks(block).enumerate() {
                blocked.feed_block(chunk, |j, s, e| {
                    blocked_hits.extend((s..e).map(|i| (c * block + j, i)))
                });
            }
            blocked.feed_block(&[], |_, _, _| panic!("empty block delivered a hit"));
            assert_eq!(blocked_hits, scalar_hits, "block {block}");
            let mut answers = vec![Answer::Edge(None); batch.len()];
            blocked.distribute(&mut answers);
            assert_eq!(answers, scalar_answers, "block {block}");
        }
    }

    #[test]
    fn space_reported_scales_with_batch() {
        let small = QueryRouter::build(&[Query::EdgeCount], RouterMode::Insertion);
        let big_batch: Vec<Query> = (0..100).map(|i| Query::Degree(v(i))).collect();
        let big = QueryRouter::build(&big_batch, RouterMode::Insertion);
        assert!(big.space_bytes() > small.space_bytes());
    }
}
