//! # sgs-query — the query-access substrate and the generic transformation
//!
//! This crate implements the paper's central contribution (§3): a generic
//! transformation from *round-adaptive* sublinear-time graph query
//! algorithms to multi-pass streaming algorithms.
//!
//! * [`query`] — the query/answer vocabulary of the augmented general
//!   graph model (Definition 6) and its relaxed variant (Definition 10),
//! * [`oracle`] — direct oracles over materialized graphs,
//! * [`round`] — the [`round::RoundAdaptive`] state-machine trait
//!   (Definition 8) and the [`round::Parallel`] combinator that lets many
//!   instances share each round (and therefore each pass),
//! * [`router`] — the [`router::QueryRouter`]: per-vertex / per-edge
//!   flat hash-bucket indexes plus sorted position cursors over one
//!   round's merged batch, so each stream update costs O(1 + hits)
//!   regardless of how many parallel trials are pending,
//! * [`arena`] — the [`arena::RouterArena`]: pooled per-shard routers and
//!   batch scratch, built once and reset per pass (no per-round heap
//!   growth after warm-up),
//! * [`sharded`] — the sharded pipeline: per-shard routers over a
//!   hash-partitioned [`sgs_stream::ShardedFeed`], merged back into
//!   byte-identical single-stream answers; the single-stream executors
//!   are its one-shard case,
//! * [`broadcast`] — broadcast ingest: the same per-shard pass state
//!   machines drawing from the cursors of one bounded
//!   [`sgs_stream::Broadcast`] ring, with side consumers (baselines,
//!   exact oracles, pass counters) riding the same single ingest,
//! * [`multiplex`] — multi-query serving: a [`multiplex::QuerySet`]
//!   admission-batches many concurrent round-adaptive jobs and serves
//!   every round with ONE shared router pass (sharded or ring), each
//!   job's answers byte-identical to its solo run,
//! * [`checkpoint`] — durable executor state: a write-ahead log of the
//!   routed stream plus block-boundary snapshots of mid-run estimator
//!   state, with byte-identical crash recovery,
//! * [`exec`] — the three executors:
//!   [`exec::run_on_oracle`] (query-access),
//!   [`exec::run_insertion`] (Theorem 9: one pass per round, reservoir
//!   samplers + counters), and
//!   [`exec::run_turnstile`] (Theorem 11: ℓ₀-samplers),
//! * [`reference`] — the pre-router executors, frozen as the equivalence
//!   oracle and perf baseline,
//! * [`accounting`] — rounds / passes / queries / measured-space reports,
//! * [`triangle_finder`] — the paper's §3 worked example (the 4-round
//!   triangle finder), used by tests and experiment E10.

pub mod accounting;
pub mod arena;
pub mod broadcast;
pub mod checkpoint;
pub mod exec;
pub mod multiplex;
pub mod oracle;
pub mod policy;
pub mod query;
pub mod reference;
pub mod relaxed;
pub mod round;
pub mod router;
pub mod runtime;
pub mod serve;
pub mod sharded;
pub mod triangle_finder;

pub use accounting::ExecReport;
pub use arena::RouterArena;
pub use broadcast::{
    answer_insertion_batch_broadcast, answer_insertion_batch_broadcast_with_opts,
    answer_turnstile_batch_broadcast, answer_turnstile_batch_broadcast_with_opts,
    run_insertion_broadcast, run_insertion_broadcast_on_runtime, run_insertion_broadcast_with_opts,
    run_turnstile_broadcast, run_turnstile_broadcast_on_runtime, run_turnstile_broadcast_with_opts,
    BroadcastOpts, SideSink,
};
pub use checkpoint::{
    run_insertion_checkpointed, run_turnstile_checkpointed, CheckpointSession,
    DEFAULT_CHECKPOINT_CHUNK, DEFAULT_SNAPSHOT_EVERY,
};
pub use exec::PassOpts;
pub use multiplex::{AdmissionReport, MuxJobStats, MuxOutput, MuxRoundStats, QuerySet};
pub use oracle::{ExactOracle, GraphOracle};
pub use policy::{host_cores, pin_current_thread, ExecPolicy, ThreadMode};
pub use query::{Answer, Query};
pub use relaxed::RelaxedOracle;
pub use round::{Parallel, RoundAdaptive};
pub use router::{QueryRouter, RouterMode};
pub use runtime::ShardRuntime;
pub use serve::{
    decode_serve_config, encode_serve_config, read_serve_snapshot, ServeConfig, ServeError,
    ServeSnapshot, ServeStats, ServerNode, DEFAULT_SERVE_BLOCK, SERVE_CONFIG_TAG,
};
pub use sgs_stream::l0::L0Mode;
pub use sgs_stream::reservoir::ReservoirMode;
pub use sharded::{
    answer_insertion_batch_sharded, answer_insertion_batch_sharded_with_block,
    answer_insertion_batch_sharded_with_exec, answer_insertion_batch_sharded_with_opts,
    answer_turnstile_batch_sharded, answer_turnstile_batch_sharded_with_block,
    answer_turnstile_batch_sharded_with_exec, run_insertion_sharded,
    run_insertion_sharded_with_block, run_insertion_sharded_with_exec,
    run_insertion_sharded_with_opts, run_turnstile_sharded, run_turnstile_sharded_with_block,
    run_turnstile_sharded_with_exec,
};
