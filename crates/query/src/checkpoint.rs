//! Durable executor state: checkpointed drivers over a WAL + snapshots.
//!
//! The sharded/broadcast executors in this crate are deterministic: one
//! seed fixes every answer bit. That makes crash recovery a *replay*
//! problem, not a consensus problem, and this module solves it with two
//! on-disk artifacts in one checkpoint directory:
//!
//! * a **write-ahead log** of the routed stream, written (and fsynced)
//!   in full by [`CheckpointSession::create`] before any estimation
//!   work runs — the durable copy of the input, chunked into the same
//!   delivery blocks the driver later feeds; and
//! * periodic **snapshots** of the estimator mid-run: the completed
//!   rounds' answer history (enough to replay the round-adaptive
//!   algorithm itself, deterministically), the [`ExecReport`] counters,
//!   and every shard pass machine's mutable state (reservoir RNG words,
//!   position hits, ℓ₀ planes) at a delivery-block boundary of the
//!   in-flight pass.
//!
//! Chunk boundaries never change an answer (the block-equivalence
//! property the broadcast ring relies on), so snapshotting *between*
//! blocks is answer-neutral: restore + resume is **byte-identical** to
//! the uninterrupted run — same estimate bits, same report — at every
//! crash point, shard count, model, and reservoir mode.
//! `tests/crash_recovery.rs` sweeps exactly that.
//!
//! Durability points: the WAL is fsynced at each segment roll and at
//! seal; each snapshot file is fsynced before the `MANIFEST` pointer is
//! atomically swung to it (write-to-temp + rename). A crash between
//! those points loses at most the un-pointed snapshot; recovery falls
//! back to the previous one (or a clean restart) and replays forward.
//! Torn WAL tails are detected by checksum and truncated at the last
//! good record boundary by [`sgs_stream::persist::read_wal`].

use crate::accounting::ExecReport;
use crate::arena::RouterArena;
use crate::exec::{PassOpts, ANSWER_BYTES};
use crate::query::Answer;
use crate::round::RoundAdaptive;
use crate::router::RouterMode;
use crate::sharded::{
    draw_targets, merge_answers, split_batch, InsertionShardPass, ShardOutcome, TurnstileShardPass,
};
use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::split_seed;
use sgs_stream::persist::{
    frame, publish_snapshot, read_frame_of, read_latest_snapshot, read_wal, Decoder, Encoder,
    PersistError, PersistResult, WalWriter, DEFAULT_SEGMENT_BYTES, KIND_SNAPSHOT,
};
use sgs_stream::reservoir::ReservoirMode;
use sgs_stream::sharded::{ShardUpdate, ShardedFeed};
use std::path::{Path, PathBuf};

/// Default delivery-block size (updates) for checkpointed runs: the WAL
/// block granularity and therefore the snapshot/crash-point resolution.
pub const DEFAULT_CHECKPOINT_CHUNK: usize = 1024;

/// Default snapshot cadence, in delivery blocks.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 8;

// ---------------------------------------------------------------------------
// Answer codec
// ---------------------------------------------------------------------------

fn encode_answer(enc: &mut Encoder, a: &Answer) {
    match *a {
        Answer::EdgeCount(m) => {
            enc.u8(0);
            enc.u64(m as u64);
        }
        Answer::Edge(e) => {
            enc.u8(1);
            match e {
                Some(e) => {
                    enc.u8(1);
                    enc.edge(e);
                }
                None => enc.u8(0),
            }
        }
        Answer::Degree(d) => {
            enc.u8(2);
            enc.u64(d as u64);
        }
        Answer::Neighbor(v) => {
            enc.u8(3);
            match v {
                Some(v) => {
                    enc.u8(1);
                    enc.u32(v.0);
                }
                None => enc.u8(0),
            }
        }
        Answer::Adjacent(b) => {
            enc.u8(4);
            enc.u8(b as u8);
        }
    }
}

fn decode_answer(dec: &mut Decoder) -> PersistResult<Answer> {
    Ok(match dec.u8("answer tag")? {
        0 => Answer::EdgeCount(dec.u64("edge count")? as usize),
        1 => Answer::Edge(match dec.u8("edge presence")? {
            0 => None,
            1 => Some(dec.edge("answer edge")?),
            _ => return Err(dec.corrupt("edge presence byte is not 0/1")),
        }),
        2 => Answer::Degree(dec.u64("degree")? as usize),
        3 => Answer::Neighbor(match dec.u8("neighbor presence")? {
            0 => None,
            1 => Some(VertexId(dec.u32("neighbor vertex")?)),
            _ => return Err(dec.corrupt("neighbor presence byte is not 0/1")),
        }),
        4 => Answer::Adjacent(match dec.u8("adjacency")? {
            0 => false,
            1 => true,
            _ => return Err(dec.corrupt("adjacency byte is not 0/1")),
        }),
        t => return Err(dec.corrupt(format!("unknown answer tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Snapshot payload
// ---------------------------------------------------------------------------

/// A decoded estimator snapshot: everything needed to resume the run
/// from one delivery-block boundary of one in-flight pass.
struct SnapshotState {
    /// 0 = insertion, 1 = turnstile — must match the resuming driver.
    model: u8,
    shards: u64,
    chunk: u64,
    block: u64,
    reservoir: u8,
    seed: u64,
    report: ExecReport,
    /// Answers of every *completed* round, in order — replayed through
    /// `RoundAdaptive::next_round` to rebuild the algorithm state.
    history: Vec<Vec<Answer>>,
    /// Global delivery blocks processed when the snapshot was taken.
    blocks_done: u64,
    /// Delivery blocks already fed into the in-flight pass.
    pass_offset: u64,
    /// One serialized pass-state blob per shard.
    shard_blobs: Vec<Vec<u8>>,
}

fn reservoir_tag(mode: ReservoirMode) -> u8 {
    match mode {
        ReservoirMode::Offer => 0,
        ReservoirMode::Skip => 1,
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_snapshot(
    model: u8,
    shards: usize,
    chunk: usize,
    opts: PassOpts,
    seed: u64,
    report: &ExecReport,
    history: &[Vec<Answer>],
    blocks_done: u64,
    pass_offset: u64,
    shard_blobs: &[Vec<u8>],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(model);
    enc.u64(shards as u64);
    enc.u64(chunk as u64);
    enc.u64(opts.block as u64);
    enc.u8(reservoir_tag(opts.reservoir));
    enc.u64(seed);
    enc.u64(report.rounds as u64);
    enc.u64(report.passes as u64);
    enc.u64(report.queries as u64);
    enc.u64(report.max_pass_space_bytes as u64);
    enc.u64(report.answer_bytes as u64);
    enc.u64(history.len() as u64);
    for round in history {
        enc.u64(round.len() as u64);
        for a in round {
            encode_answer(&mut enc, a);
        }
    }
    enc.u64(blocks_done);
    enc.u64(pass_offset);
    enc.u64(shard_blobs.len() as u64);
    for b in shard_blobs {
        enc.blob(b);
    }
    frame(KIND_SNAPSHOT, &enc.into_bytes())
}

fn decode_snapshot(bytes: &[u8]) -> PersistResult<SnapshotState> {
    let f = read_frame_of(bytes, 0, KIND_SNAPSHOT)?;
    let mut dec = Decoder::new(f.payload);
    let model = dec.u8("snapshot model")?;
    if model > 1 {
        return Err(dec.corrupt(format!("unknown snapshot model {model}")));
    }
    let shards = dec.u64("shard count")?;
    let chunk = dec.u64("chunk size")?;
    let block = dec.u64("feed block size")?;
    let reservoir = dec.u8("reservoir mode")?;
    if reservoir > 1 {
        return Err(dec.corrupt("reservoir mode byte is not 0/1"));
    }
    let seed = dec.u64("run seed")?;
    let report = ExecReport {
        rounds: dec.u64("rounds")? as usize,
        passes: dec.u64("passes")? as usize,
        queries: dec.u64("queries")? as usize,
        max_pass_space_bytes: dec.u64("max pass space")? as usize,
        answer_bytes: dec.u64("answer bytes")? as usize,
    };
    let rounds = dec.count(8, "answer history")?;
    let mut history = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let len = dec.count(2, "round answers")?;
        let mut round = Vec::with_capacity(len);
        for _ in 0..len {
            round.push(decode_answer(&mut dec)?);
        }
        history.push(round);
    }
    let blocks_done = dec.u64("blocks done")?;
    let pass_offset = dec.u64("pass offset")?;
    let nblobs = dec.count(8, "shard states")?;
    if nblobs as u64 != shards {
        return Err(dec.corrupt(format!(
            "snapshot has {nblobs} shard states for {shards} shards"
        )));
    }
    let mut shard_blobs = Vec::with_capacity(nblobs);
    for _ in 0..nblobs {
        shard_blobs.push(dec.blob("shard state")?.to_vec());
    }
    dec.finish()?;
    Ok(SnapshotState {
        model,
        shards,
        chunk,
        block,
        reservoir,
        seed,
        report,
        history,
        blocks_done,
        pass_offset,
        shard_blobs,
    })
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// One durable run: a checkpoint directory holding the sealed WAL of
/// the routed stream plus zero or more snapshots, and the in-memory
/// cadence/progress counters the checkpointed drivers consult.
///
/// Lifecycle: [`CheckpointSession::create`] ingests a feed into the WAL
/// (the durable copy of the stream) and starts fresh;
/// [`CheckpointSession::resume`] rebuilds the feed from the WAL and
/// loads the latest snapshot, if any. Either way the session is then
/// passed to [`run_insertion_checkpointed`] /
/// [`run_turnstile_checkpointed`].
pub struct CheckpointSession {
    dir: PathBuf,
    snapshot_every: u64,
    chunk: usize,
    crash_after: Option<u64>,
    blocks_processed: u64,
    snapshots_written: u64,
    next_snapshot_seq: u64,
    resume: Option<SnapshotState>,
    truncation: Option<String>,
}

impl CheckpointSession {
    /// Start a fresh durable run: clear `dir` of any previous run's
    /// files, write the feed's routed stream to the WAL in
    /// `chunk`-update blocks, and seal it. After this returns, the
    /// input is durable — a crashed run can be resumed from `dir`
    /// alone. `snapshot_every` is the snapshot cadence in delivery
    /// blocks (`0` = WAL only, no snapshots).
    pub fn create(
        dir: &Path,
        feed: &ShardedFeed,
        snapshot_every: u64,
        chunk: usize,
    ) -> PersistResult<Self> {
        let chunk = chunk.max(1);
        let mut wal = WalWriter::create(dir, DEFAULT_SEGMENT_BYTES)?;
        for block in feed.routed().chunks(chunk) {
            wal.append_block(block)?;
        }
        wal.seal_with_map(feed.num_vertices(), feed.shard_map(), chunk)?;
        Ok(CheckpointSession {
            dir: dir.to_path_buf(),
            snapshot_every,
            chunk,
            crash_after: None,
            blocks_processed: 0,
            snapshots_written: 0,
            next_snapshot_seq: 0,
            resume: None,
            truncation: None,
        })
    }

    /// Resume a durable run from its checkpoint directory: scan the WAL
    /// (truncating a torn tail if one is found), rebuild the routed
    /// feed, and load the latest published snapshot. An unsealed WAL is
    /// an error — the ingest phase never completed, so there is no
    /// consistent stream to resume.
    pub fn resume(dir: &Path, snapshot_every: u64) -> PersistResult<(Self, ShardedFeed)> {
        let wal = read_wal(dir)?;
        let meta = wal.meta.ok_or_else(|| {
            PersistError::corrupt(0, "WAL is unsealed: the ingest phase never completed")
                .located(dir)
        })?;
        let routed = wal.blocks.concat();
        // The seal carries the placement (uniform hash + overrides) the
        // stream was routed with; recovery validates the routed buffer
        // against it, so a load-balanced run resumes into its placement.
        let feed = ShardedFeed::from_routed_with_map(
            meta.num_vertices as usize,
            meta.shard_map(),
            routed,
        )?;
        let snap = match read_latest_snapshot(dir)? {
            Some((seq, payload)) => {
                let snap = decode_snapshot(&payload)
                    .map_err(|e| e.located(dir.join(format!("snap-{seq:08}.bin"))))?;
                Some((seq, snap))
            }
            None => None,
        };
        let (next_seq, resume, blocks_processed) = match snap {
            Some((seq, snap)) => {
                let blocks = snap.blocks_done;
                (seq + 1, Some(snap), blocks)
            }
            None => (0, None, 0),
        };
        Ok((
            CheckpointSession {
                dir: dir.to_path_buf(),
                snapshot_every,
                chunk: meta.block_len.max(1) as usize,
                crash_after: None,
                blocks_processed,
                snapshots_written: 0,
                next_snapshot_seq: next_seq,
                resume,
                truncation: wal.truncation,
            },
            feed,
        ))
    }

    /// Simulate a crash: the driver returns `Ok(None)` immediately
    /// after processing global delivery block number `blocks` (1-based,
    /// counted across passes). Test-harness hook; a real crash at the
    /// same point is indistinguishable to recovery.
    pub fn set_crash_after(&mut self, blocks: u64) {
        self.crash_after = Some(blocks);
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Delivery-block size of this session (WAL block granularity).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Global delivery blocks processed so far (across passes).
    pub fn blocks_processed(&self) -> u64 {
        self.blocks_processed
    }

    /// Snapshots published by this process (not counting ones a
    /// resumed-from directory already held).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Human-readable report if resuming truncated a torn WAL tail.
    pub fn truncation_report(&self) -> Option<&str> {
        self.truncation.as_deref()
    }

    /// Whether this session loaded a snapshot to resume from.
    pub fn has_resume_state(&self) -> bool {
        self.resume.is_some()
    }

    #[allow(clippy::too_many_arguments)]
    fn publish(
        &mut self,
        model: u8,
        shards: usize,
        opts: PassOpts,
        seed: u64,
        report: &ExecReport,
        history: &[Vec<Answer>],
        pass_offset: u64,
        shard_blobs: &[Vec<u8>],
    ) -> PersistResult<()> {
        let payload = encode_snapshot(
            model,
            shards,
            self.chunk,
            opts,
            seed,
            report,
            history,
            self.blocks_processed,
            pass_offset,
            shard_blobs,
        );
        publish_snapshot(&self.dir, self.next_snapshot_seq, &payload)?;
        self.next_snapshot_seq += 1;
        self.snapshots_written += 1;
        Ok(())
    }

    /// Validate a loaded snapshot against the resuming driver's
    /// configuration and hand it over.
    fn take_resume(
        &mut self,
        model: u8,
        shards: usize,
        opts: PassOpts,
        seed: u64,
    ) -> PersistResult<Option<SnapshotState>> {
        let Some(snap) = self.resume.take() else {
            return Ok(None);
        };
        let mismatch = |what: &str, found: u64, expected: u64| {
            Err(PersistError::corrupt(
                0,
                format!("snapshot {what} is {found}, resuming run expects {expected}"),
            )
            .located(&self.dir))
        };
        if snap.model != model {
            return mismatch("model", snap.model as u64, model as u64);
        }
        if snap.shards != shards as u64 {
            return mismatch("shard count", snap.shards, shards as u64);
        }
        if snap.chunk != self.chunk as u64 {
            return mismatch("chunk size", snap.chunk, self.chunk as u64);
        }
        if snap.block != opts.block as u64 {
            return mismatch("feed block size", snap.block, opts.block as u64);
        }
        if snap.reservoir != reservoir_tag(opts.reservoir) {
            return mismatch(
                "reservoir mode",
                snap.reservoir as u64,
                reservoir_tag(opts.reservoir) as u64,
            );
        }
        if snap.seed != seed {
            return mismatch("run seed", snap.seed, seed);
        }
        Ok(Some(snap))
    }
}

// ---------------------------------------------------------------------------
// Checkpointed drivers
// ---------------------------------------------------------------------------

/// Replay a snapshot's completed-round answers through the algorithm to
/// rebuild its internal state. Returns the last round's answers — the
/// input to the next `next_round` call (the in-flight round).
fn replay_history<A: RoundAdaptive>(
    alg: &mut A,
    history: &[Vec<Answer>],
) -> PersistResult<Vec<Answer>> {
    let mut answers: Vec<Answer> = Vec::new();
    for round in history {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            return Err(PersistError::corrupt(
                0,
                "snapshot history is longer than the algorithm's round count",
            ));
        }
        if batch.len() != round.len() {
            return Err(PersistError::corrupt(
                0,
                format!(
                    "snapshot round has {} answers for a batch of {} queries",
                    round.len(),
                    batch.len()
                ),
            ));
        }
        answers = round.clone();
    }
    Ok(answers)
}

fn filter_chunk(
    chunk: &[sgs_stream::sharded::RoutedUpdate],
    sid: usize,
    out: &mut Vec<ShardUpdate>,
) {
    out.clear();
    for r in chunk {
        if let Some(su) = r.delivery_for(sid) {
            out.push(su);
        }
    }
}

/// Execute a round-adaptive algorithm as a checkpointed insertion-only
/// streaming run: the cooperative single-threaded sibling of
/// [`crate::sharded::run_insertion_sharded_with_opts`], byte-identical
/// to it, feeding every shard pass machine chunk by chunk so estimator
/// state can be snapshotted at delivery-block boundaries.
///
/// Returns `Ok(None)` iff the session's simulated crash point was hit;
/// otherwise the same `(output, report)` the uninterrupted executors
/// produce. If the session carries resume state (from
/// [`CheckpointSession::resume`]), the run fast-forwards through the
/// snapshot's answer history and picks the in-flight pass up at its
/// recorded block offset.
pub fn run_insertion_checkpointed<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    session: &mut CheckpointSession,
) -> PersistResult<Option<(A::Output, ExecReport)>> {
    run_checkpointed(alg, feed, seed, arena, opts, session, 0)
}

/// Turnstile sibling of [`run_insertion_checkpointed`]. `opts.block` is
/// the feed block size; `opts.reservoir` is ignored (turnstile `f3`
/// runs on ℓ₀-samplers).
pub fn run_turnstile_checkpointed<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    session: &mut CheckpointSession,
) -> PersistResult<Option<(A::Output, ExecReport)>> {
    run_checkpointed(alg, feed, seed, arena, opts, session, 1)
}

/// The shared driver: `model` picks which pass machines run (0 =
/// insertion, 1 = turnstile). One loop shape so the crash/snapshot
/// logic cannot drift between the models.
fn run_checkpointed<A: RoundAdaptive>(
    mut alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    session: &mut CheckpointSession,
    model: u8,
) -> PersistResult<Option<(A::Output, ExecReport)>> {
    let shards = feed.num_shards();
    let chunk = session.chunk;
    let mut report = ExecReport::default();
    let mut answers: Vec<Answer> = Vec::new();
    let mut history: Vec<Vec<Answer>> = Vec::new();
    let mut resume_offset = 0u64;
    let mut resume_blobs: Option<Vec<Vec<u8>>> = None;
    let mut resuming = false;

    if let Some(snap) = session.take_resume(model, shards, opts, seed)? {
        answers = replay_history(&mut alg, &snap.history)?;
        history = snap.history;
        report = snap.report;
        session.blocks_processed = snap.blocks_done;
        resume_offset = snap.pass_offset;
        resume_blobs = Some(snap.shard_blobs);
        resuming = true;
    }

    arena.begin_run();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        if !resuming {
            // A resumed in-flight round was already counted when the
            // snapshotting run entered it.
            report.rounds += 1;
            report.passes += 1;
            report.queries += batch.len();
            report.answer_bytes += batch.len() * ANSWER_BYTES;
        }
        let pass_seed = split_seed(seed, report.passes as u64);
        feed.begin_pass();
        let mode = if model == 0 {
            RouterMode::Insertion
        } else {
            RouterMode::Turnstile
        };
        split_batch(&batch, mode, feed.shard_map(), arena);
        let mut targets = std::mem::take(&mut arena.scratch_targets);
        let f1_slots = std::mem::take(&mut arena.scratch_edge);
        if model == 0 {
            draw_targets(&batch, feed.stream_len() as u64, pass_seed, &mut targets);
        }
        enum Pass<'a> {
            Insertion(InsertionShardPass<'a>),
            Turnstile(TurnstileShardPass<'a>),
        }
        let n = feed.num_vertices();
        let mut passes: Vec<Pass<'_>> = arena.slots[..shards]
            .iter_mut()
            .map(|slot| {
                if model == 0 {
                    Pass::Insertion(InsertionShardPass::new(slot, &targets, pass_seed, opts))
                } else {
                    Pass::Turnstile(TurnstileShardPass::new(slot, n, &f1_slots, pass_seed, opts))
                }
            })
            .collect();
        let mut start_block = 0usize;
        if resuming {
            if let Some(blobs) = resume_blobs.take() {
                for (p, b) in passes.iter_mut().zip(&blobs) {
                    match p {
                        Pass::Insertion(p) => p.restore_state(b)?,
                        Pass::Turnstile(p) => p.restore_state(b)?,
                    }
                }
            }
            start_block = resume_offset as usize;
        }

        let routed = feed.routed();
        let pass_blocks = routed.len().div_ceil(chunk);
        let mut scratch: Vec<ShardUpdate> = Vec::new();
        for bi in start_block..pass_blocks {
            let lo = bi * chunk;
            let hi = (lo + chunk).min(routed.len());
            for (sid, pass) in passes.iter_mut().enumerate() {
                filter_chunk(&routed[lo..hi], sid, &mut scratch);
                match pass {
                    Pass::Insertion(p) => p.feed(&scratch),
                    Pass::Turnstile(p) => p.feed(&scratch),
                }
            }
            session.blocks_processed += 1;
            if session.snapshot_every > 0
                && session
                    .blocks_processed
                    .is_multiple_of(session.snapshot_every)
            {
                let blobs: Vec<Vec<u8>> = passes
                    .iter()
                    .map(|p| match p {
                        Pass::Insertion(p) => p.snapshot_state(),
                        Pass::Turnstile(p) => p.snapshot_state(),
                    })
                    .collect();
                session.publish(
                    model,
                    shards,
                    opts,
                    seed,
                    &report,
                    &history,
                    (bi + 1) as u64,
                    &blobs,
                )?;
            }
            if session.crash_after == Some(session.blocks_processed) {
                drop(passes);
                arena.scratch_targets = targets;
                arena.scratch_edge = f1_slots;
                return Ok(None);
            }
        }
        resuming = false;

        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(shards);
        for p in passes {
            outcomes.push(match p {
                Pass::Insertion(p) => p.finish(),
                Pass::Turnstile(p) => p.finish(),
            });
        }
        let mut space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>();
        if model == 0 {
            space += targets.len() * 16;
        }
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        arena.scratch_targets = targets;
        let mut merged = {
            let a = merge_answers(batch.len(), feed, arena, shards, &outcomes);
            arena.scratch_edge = f1_slots;
            a
        };
        if model == 1 {
            // Merge the per-shard f1 banks into shard 0's (linear
            // sketches) and answer the f1 slots from the merged state —
            // the same merge the sharded/broadcast drivers perform.
            let (head, rest) = outcomes.split_at_mut(1);
            for o in rest.iter() {
                for (a, b) in head[0].f1_bank.iter_mut().zip(&o.f1_bank) {
                    a.merge(b);
                }
            }
            for (&slot, s) in arena.scratch_edge.iter().zip(&outcomes[0].f1_bank) {
                merged[slot as usize] = Answer::Edge(s.sample().map(Edge::from_key));
            }
        }
        answers = merged;
        history.push(answers.clone());
        arena.note_round();
    }
    arena.end_run();
    Ok(Some((alg.output(), report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::sharded::{run_insertion_sharded_with_opts, run_turnstile_sharded_with_block};
    use sgs_graph::gen;
    use sgs_stream::{InsertionStream, TurnstileStream};

    /// A 2-round protocol exercising every insertion answer kind.
    struct TwoRoundProbe {
        round: usize,
        got: Vec<Vec<Answer>>,
        turnstile: bool,
    }

    impl RoundAdaptive for TwoRoundProbe {
        type Output = Vec<Vec<Answer>>;
        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if !answers.is_empty() {
                self.got.push(answers.to_vec());
            }
            self.round += 1;
            match self.round {
                1 => vec![Query::EdgeCount, Query::RandomEdge],
                2 => {
                    let mut qs = vec![Query::RandomEdge];
                    for v in 0..10u32 {
                        qs.push(Query::Degree(VertexId(v)));
                        qs.push(Query::RandomNeighbor(VertexId(v)));
                        qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
                        if !self.turnstile {
                            qs.push(Query::IthNeighbor(VertexId(v), 1 + (v as u64 % 3)));
                        }
                    }
                    qs
                }
                _ => Vec::new(),
            }
        }
        fn output(&mut self) -> Vec<Vec<Answer>> {
            std::mem::take(&mut self.got)
        }
    }

    fn probe(turnstile: bool) -> TwoRoundProbe {
        TwoRoundProbe {
            round: 0,
            got: Vec::new(),
            turnstile,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sgs-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn answer_codec_round_trips_every_variant() {
        let e = Edge::new(VertexId(3), VertexId(9));
        let all = vec![
            Answer::EdgeCount(42),
            Answer::Edge(Some(e)),
            Answer::Edge(None),
            Answer::Degree(7),
            Answer::Neighbor(Some(VertexId(5))),
            Answer::Neighbor(None),
            Answer::Adjacent(true),
            Answer::Adjacent(false),
        ];
        let mut enc = Encoder::new();
        for a in &all {
            encode_answer(&mut enc, a);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for a in &all {
            assert_eq!(decode_answer(&mut dec).unwrap(), *a);
        }
        dec.finish().unwrap();
    }

    #[test]
    fn checkpointed_insertion_matches_sharded_driver() {
        let g = gen::gnm(24, 90, 41);
        let ins = InsertionStream::from_graph(&g, 42);
        for shards in [1usize, 3] {
            let feed = ShardedFeed::partition(&ins, shards);
            let dir = tmp_dir(&format!("ins-eq-{shards}"));
            let mut session = CheckpointSession::create(&dir, &feed, 0, 16).unwrap();
            let mut arena = RouterArena::new();
            let got = run_insertion_checkpointed(
                probe(false),
                &feed,
                7,
                &mut arena,
                PassOpts::default(),
                &mut session,
            )
            .unwrap()
            .expect("no crash requested");
            let mut arena2 = RouterArena::new();
            let want = run_insertion_sharded_with_opts(
                probe(false),
                &feed,
                7,
                &mut arena2,
                PassOpts::default(),
            );
            assert_eq!(got.0, want.0, "{shards} shards");
            assert_eq!(got.1.rounds, want.1.rounds);
            assert_eq!(got.1.queries, want.1.queries);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn checkpointed_turnstile_matches_sharded_driver() {
        let g = gen::gnm(24, 90, 43);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 44);
        for shards in [1usize, 3] {
            let feed = ShardedFeed::partition(&tst, shards);
            let dir = tmp_dir(&format!("tst-eq-{shards}"));
            let mut session = CheckpointSession::create(&dir, &feed, 0, 16).unwrap();
            let mut arena = RouterArena::new();
            let got = run_turnstile_checkpointed(
                probe(true),
                &feed,
                9,
                &mut arena,
                PassOpts::default(),
                &mut session,
            )
            .unwrap()
            .expect("no crash requested");
            let mut arena2 = RouterArena::new();
            let want = run_turnstile_sharded_with_block(
                probe(true),
                &feed,
                9,
                &mut arena2,
                PassOpts::default().block,
            );
            assert_eq!(got.0, want.0, "{shards} shards");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn crash_and_resume_is_byte_identical_at_every_block() {
        let g = gen::gnm(20, 70, 45);
        let ins = InsertionStream::from_graph(&g, 46);
        let feed = ShardedFeed::partition(&ins, 2);
        let dir = tmp_dir("ins-crash");
        let chunk = 16usize;
        let mut session = CheckpointSession::create(&dir, &feed, 2, chunk).unwrap();
        let mut arena = RouterArena::new();
        let baseline = run_insertion_checkpointed(
            probe(false),
            &feed,
            11,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
        .unwrap()
        .unwrap();
        let total_blocks = session.blocks_processed();
        assert!(total_blocks >= 4, "want a multi-block run");
        for crash_at in 1..=total_blocks {
            let mut session = CheckpointSession::create(&dir, &feed, 2, chunk).unwrap();
            session.set_crash_after(crash_at);
            let mut arena = RouterArena::new();
            let crashed = run_insertion_checkpointed(
                probe(false),
                &feed,
                11,
                &mut arena,
                PassOpts::default(),
                &mut session,
            )
            .unwrap();
            assert!(crashed.is_none(), "crash at block {crash_at} did not fire");
            let (mut resumed, feed2) = CheckpointSession::resume(&dir, 2).unwrap();
            let mut arena = RouterArena::new();
            let got = run_insertion_checkpointed(
                probe(false),
                &feed2,
                11,
                &mut arena,
                PassOpts::default(),
                &mut resumed,
            )
            .unwrap()
            .expect("resumed run must complete");
            assert_eq!(got.0, baseline.0, "crash at block {crash_at}");
            assert_eq!(got.1, baseline.1, "report after crash at block {crash_at}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_snapshot_restarts_cleanly() {
        let g = gen::gnm(18, 60, 47);
        let ins = InsertionStream::from_graph(&g, 48);
        let feed = ShardedFeed::partition(&ins, 2);
        let dir = tmp_dir("ins-nosnap");
        // snapshot_every = 0: WAL only. Crash mid-run, then resume —
        // recovery replays from the start of the WAL.
        let mut session = CheckpointSession::create(&dir, &feed, 0, 16).unwrap();
        let mut arena = RouterArena::new();
        let baseline = run_insertion_checkpointed(
            probe(false),
            &feed,
            13,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
        .unwrap()
        .unwrap();
        let mut session = CheckpointSession::create(&dir, &feed, 0, 16).unwrap();
        session.set_crash_after(1);
        let mut arena = RouterArena::new();
        assert!(run_insertion_checkpointed(
            probe(false),
            &feed,
            13,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
        .unwrap()
        .is_none());
        let (mut resumed, feed2) = CheckpointSession::resume(&dir, 0).unwrap();
        assert!(!resumed.has_resume_state());
        let mut arena = RouterArena::new();
        let got = run_insertion_checkpointed(
            probe(false),
            &feed2,
            13,
            &mut arena,
            PassOpts::default(),
            &mut resumed,
        )
        .unwrap()
        .unwrap();
        assert_eq!(got.0, baseline.0);
        assert_eq!(got.1, baseline.1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_seed_snapshot_is_rejected() {
        let g = gen::gnm(18, 60, 49);
        let ins = InsertionStream::from_graph(&g, 50);
        let feed = ShardedFeed::partition(&ins, 2);
        let dir = tmp_dir("ins-mismatch");
        let mut session = CheckpointSession::create(&dir, &feed, 1, 16).unwrap();
        session.set_crash_after(3);
        let mut arena = RouterArena::new();
        let _ = run_insertion_checkpointed(
            probe(false),
            &feed,
            15,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
        .unwrap();
        let (mut resumed, feed2) = CheckpointSession::resume(&dir, 1).unwrap();
        assert!(resumed.has_resume_state());
        let mut arena = RouterArena::new();
        let err = run_insertion_checkpointed(
            probe(false),
            &feed2,
            16, // wrong seed
            &mut arena,
            PassOpts::default(),
            &mut resumed,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("run seed"),
            "unhelpful error: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
