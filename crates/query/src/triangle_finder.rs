//! The paper's §3 worked example: a 4-round adaptive triangle finder.
//!
//! > 1. Sample one edge `e = (u, v)` uniformly at random,
//! > 2. query the degrees of `u, v` and let `u` be the endpoint whose
//! >    degree is no larger than the other's,
//! > 3. sample a random neighbor `w` of `u`, and
//! > 4. query whether `{v, w} ∈ E`.
//!
//! Rounds: `Q1 = (f1)`, `Q2 = (f2(u), f2(v))`, `Q3 = (f3(u, i))` with `i`
//! uniform in `[dg(u)]`, `Q4 = (f4(v, w))`. Per Theorem 9 this becomes a
//! 4-pass insertion-only streaming algorithm; with the relaxed `f3` it
//! becomes a 4-pass turnstile algorithm (Theorem 11). Experiment E10
//! verifies that all three executions find triangles at statistically
//! indistinguishable rates.

use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use sgs_graph::VertexId;
use sgs_stream::hash::FastRng;

/// How the third-round neighbor sample is issued.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NeighborMode {
    /// `f3(u, i)` with self-sampled `i ∈ [dg(u)]` (augmented general
    /// model; insertion-only streams).
    Indexed,
    /// Relaxed `f3(u)` (Definition 10; turnstile streams).
    Relaxed,
}

/// The 4-round triangle finder.
pub struct TriangleFinder {
    rng: FastRng,
    mode: NeighborMode,
    stage: u8,
    u: Option<VertexId>,
    v: Option<VertexId>,
    w: Option<VertexId>,
    found: Option<(VertexId, VertexId, VertexId)>,
}

impl TriangleFinder {
    /// New finder; `seed` drives its internal coins (edge orientation and
    /// the neighbor index).
    pub fn new(seed: u64, mode: NeighborMode) -> Self {
        TriangleFinder {
            rng: FastRng::seed_from_u64(seed),
            mode,
            stage: 0,
            u: None,
            v: None,
            w: None,
            found: None,
        }
    }
}

impl RoundAdaptive for TriangleFinder {
    /// The triangle `(u, v, w)` if one was found.
    type Output = Option<(VertexId, VertexId, VertexId)>;

    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
        match self.stage {
            0 => {
                self.stage = 1;
                vec![Query::RandomEdge]
            }
            1 => {
                let Some(e) = answers[0].expect_edge() else {
                    self.stage = 99;
                    return Vec::new();
                };
                // Random orientation (the algorithm's own coin).
                let (a, b) = if self.rng.gen_bool(0.5) {
                    (e.u(), e.v())
                } else {
                    (e.v(), e.u())
                };
                self.u = Some(a);
                self.v = Some(b);
                self.stage = 2;
                vec![Query::Degree(a), Query::Degree(b)]
            }
            2 => {
                let du = answers[0].expect_degree();
                let dv = answers[1].expect_degree();
                // u becomes the endpoint with the smaller degree.
                if du > dv {
                    std::mem::swap(self.u.as_mut().unwrap(), self.v.as_mut().unwrap());
                }
                let u = self.u.unwrap();
                let d = du.min(dv);
                if d == 0 {
                    self.stage = 99;
                    return Vec::new();
                }
                self.stage = 3;
                match self.mode {
                    NeighborMode::Indexed => {
                        let i = self.rng.gen_range(1..=d as u64);
                        vec![Query::IthNeighbor(u, i)]
                    }
                    NeighborMode::Relaxed => vec![Query::RandomNeighbor(u)],
                }
            }
            3 => {
                let Some(w) = answers[0].expect_neighbor() else {
                    self.stage = 99;
                    return Vec::new();
                };
                let v = self.v.unwrap();
                if w == v {
                    // Sampled the edge partner itself: no third vertex.
                    self.stage = 99;
                    return Vec::new();
                }
                self.w = Some(w);
                self.stage = 4;
                vec![Query::Adjacent(v, w)]
            }
            4 => {
                if answers[0].expect_adjacent() {
                    self.found = Some((self.u.unwrap(), self.v.unwrap(), self.w.unwrap()));
                }
                self.stage = 99;
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn output(&mut self) -> Self::Output {
        self.found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_insertion, run_on_oracle, run_turnstile};
    use crate::oracle::ExactOracle;
    use sgs_graph::{gen, StaticGraph};
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn uses_exactly_four_rounds() {
        let g = gen::complete_graph(6);
        let mut o = ExactOracle::new(&g, 1);
        let (out, rep) = run_on_oracle(TriangleFinder::new(0, NeighborMode::Indexed), &mut o);
        assert_eq!(rep.rounds, 4);
        assert_eq!(rep.queries, 5); // 1 + 2 + 1 + 1
        assert!(out.is_some(), "K6: any (e, w) completes a triangle");
    }

    #[test]
    fn four_passes_in_streams() {
        let g = gen::complete_graph(6);
        let ins = InsertionStream::from_graph(&g, 3);
        let (out, rep) = run_insertion(TriangleFinder::new(4, NeighborMode::Indexed), &ins, 5);
        assert_eq!(rep.passes, 4);
        assert!(out.is_some());

        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 6);
        let (out, rep) = run_turnstile(TriangleFinder::new(7, NeighborMode::Relaxed), &tst, 8);
        assert_eq!(rep.passes, 4);
        assert!(out.is_some());
    }

    #[test]
    fn found_triangles_are_real() {
        let g = gen::gnm(25, 110, 9);
        let ins = InsertionStream::from_graph(&g, 10);
        let mut found = 0;
        for t in 0..300u64 {
            let (out, _) = run_insertion(
                TriangleFinder::new(t, NeighborMode::Indexed),
                &ins,
                1000 + t,
            );
            if let Some((a, b, c)) = out {
                found += 1;
                assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            }
        }
        assert!(found > 0, "should find at least one triangle in 300 trials");
    }

    #[test]
    fn triangle_free_graph_never_finds() {
        let g = gen::complete_bipartite(6, 6);
        let ins = InsertionStream::from_graph(&g, 11);
        for t in 0..100u64 {
            let (out, _) = run_insertion(TriangleFinder::new(t, NeighborMode::Indexed), &ins, t);
            assert!(out.is_none());
        }
    }

    #[test]
    fn oracle_and_stream_success_rates_match() {
        // Theorem 9: same output distribution. Compare success frequencies.
        let g = gen::gnm(20, 80, 12);
        let ins = InsertionStream::from_graph(&g, 13);
        let trials = 2500u64;
        let mut oracle_hits = 0u32;
        let mut stream_hits = 0u32;
        for t in 0..trials {
            let mut o = ExactOracle::new(&g, 50_000 + t);
            if run_on_oracle(TriangleFinder::new(t, NeighborMode::Indexed), &mut o)
                .0
                .is_some()
            {
                oracle_hits += 1;
            }
            if run_insertion(
                TriangleFinder::new(t, NeighborMode::Indexed),
                &ins,
                90_000 + t,
            )
            .0
            .is_some()
            {
                stream_hits += 1;
            }
        }
        let (p, q) = (
            oracle_hits as f64 / trials as f64,
            stream_hits as f64 / trials as f64,
        );
        assert!(
            (p - q).abs() < 0.05,
            "success rates diverge: oracle {p:.3} vs stream {q:.3}"
        );
    }
}
