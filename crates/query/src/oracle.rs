//! Direct oracles over materialized graphs.
//!
//! [`ExactOracle`] answers Definition 6 queries from an in-memory graph —
//! this is the "sublinear-time algorithm" execution mode, and the
//! reference against which the streaming executors are validated
//! (Theorems 9/11 promise the same output distribution).
//!
//! Internally the oracle freezes the graph into a [`CsrGraph`]: one
//! contiguous allocation with sorted neighbor ranges, so `f2` is two
//! array reads, `f3` one bounds-checked index, and `f4` a binary search —
//! no hashing and no pointer chasing on the query hot path. The `f1`/`f3`
//! sampling coins come from a seeded [`FastRng`].

use crate::query::{Answer, Query};
use sgs_graph::{CsrGraph, Edge, StaticGraph};
use sgs_stream::hash::FastRng;

/// Anything that can answer model queries.
pub trait GraphOracle {
    /// Number of vertices `n` (known to algorithms up front).
    fn num_vertices(&self) -> usize;
    /// Answer one query.
    fn answer(&mut self, q: Query) -> Answer;
}

/// An exact oracle over a frozen CSR snapshot of a graph, with its own
/// seeded randomness for the sampling queries.
pub struct ExactOracle {
    g: CsrGraph,
    edges: Vec<Edge>,
    rng: FastRng,
}

impl ExactOracle {
    /// Snapshot a graph into CSR form; `seed` drives the `f1`/`f3`
    /// sampling. `IthNeighbor` indexes into the CSR's *sorted* adjacency
    /// order (any fixed order is a valid Definition 6 oracle).
    pub fn new(g: &impl StaticGraph, seed: u64) -> Self {
        ExactOracle {
            g: CsrGraph::from_graph(g),
            edges: g.edges(),
            rng: FastRng::seed_from_u64(seed),
        }
    }
}

impl GraphOracle for ExactOracle {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn answer(&mut self, q: Query) -> Answer {
        match q {
            Query::EdgeCount => Answer::EdgeCount(self.g.num_edges()),
            Query::RandomEdge => {
                if self.edges.is_empty() {
                    Answer::Edge(None)
                } else {
                    let i = self.rng.gen_range(0..self.edges.len());
                    Answer::Edge(Some(self.edges[i]))
                }
            }
            Query::Degree(v) => Answer::Degree(self.g.degree(v)),
            Query::IthNeighbor(v, i) => {
                // 1-based index as in the paper.
                if i == 0 {
                    Answer::Neighbor(None)
                } else {
                    Answer::Neighbor(self.g.sorted_neighbors(v).get((i - 1) as usize).copied())
                }
            }
            Query::RandomNeighbor(v) => {
                let ns = self.g.sorted_neighbors(v);
                if ns.is_empty() {
                    Answer::Neighbor(None)
                } else {
                    let i = self.rng.gen_range(0..ns.len());
                    Answer::Neighbor(Some(ns[i]))
                }
            }
            Query::Adjacent(u, v) => Answer::Adjacent(self.g.has_edge(u, v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{gen, AdjListGraph, VertexId};

    #[test]
    fn degrees_and_adjacency() {
        let g = gen::gnm(20, 50, 1);
        let mut o = ExactOracle::new(&g, 2);
        for v in 0..20u32 {
            let v = VertexId(v);
            assert_eq!(o.answer(Query::Degree(v)).expect_degree(), g.degree(v));
        }
        for e in g.edges() {
            assert!(o.answer(Query::Adjacent(e.u(), e.v())).expect_adjacent());
        }
    }

    #[test]
    fn ith_neighbor_one_based_in_sorted_order() {
        let g: AdjListGraph = "0 2\n0 1\n0 3".parse().unwrap();
        let mut o = ExactOracle::new(&g, 3);
        assert_eq!(
            o.answer(Query::IthNeighbor(VertexId(0), 1))
                .expect_neighbor(),
            Some(VertexId(1))
        );
        assert_eq!(
            o.answer(Query::IthNeighbor(VertexId(0), 3))
                .expect_neighbor(),
            Some(VertexId(3))
        );
        assert_eq!(
            o.answer(Query::IthNeighbor(VertexId(0), 4))
                .expect_neighbor(),
            None
        );
        assert_eq!(
            o.answer(Query::IthNeighbor(VertexId(0), 0))
                .expect_neighbor(),
            None
        );
    }

    #[test]
    fn random_edge_uniformity() {
        let g = gen::gnm(10, 20, 4);
        let mut o = ExactOracle::new(&g, 5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let e = o.answer(Query::RandomEdge).expect_edge().unwrap();
            *counts.entry(e.key()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 20);
        for (&k, &c) in &counts {
            let dev = (c as f64 - 1000.0).abs() / 1000.0;
            assert!(dev < 0.2, "edge {k}: {c}");
        }
    }

    #[test]
    fn random_neighbor_of_isolated_vertex() {
        let g = AdjListGraph::new(3);
        let mut o = ExactOracle::new(&g, 6);
        assert_eq!(
            o.answer(Query::RandomNeighbor(VertexId(0)))
                .expect_neighbor(),
            None
        );
        assert_eq!(o.answer(Query::RandomEdge).expect_edge(), None);
    }

    #[test]
    fn csr_snapshot_answers_match_source_graph() {
        let g = gen::gnm(40, 200, 9);
        let mut o = ExactOracle::new(&g, 10);
        for v in 0..40u32 {
            let v = VertexId(v);
            let d = g.degree(v);
            assert_eq!(o.answer(Query::Degree(v)).expect_degree(), d);
            for i in 1..=d as u64 {
                let w = o
                    .answer(Query::IthNeighbor(v, i))
                    .expect_neighbor()
                    .unwrap();
                assert!(g.has_edge(v, w), "{v:?} -> {w:?}");
            }
        }
    }
}
