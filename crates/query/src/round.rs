//! Round-adaptive graph query algorithms (Definition 8).
//!
//! A `k`-round adaptive algorithm proceeds in rounds: in each round it
//! emits a *batch* of queries that may depend only on its own randomness
//! and the answers to earlier rounds. This is exactly the structure the
//! transformation theorems exploit — each round's batch can be answered by
//! one streaming pass.
//!
//! [`RoundAdaptive`] captures the state machine; [`Parallel`] merges many
//! instances so they share rounds (the paper's "parallel for" loops, e.g.
//! the `k` estimator copies of Theorem 17 that together still use only 3
//! passes).

use crate::query::{Answer, Query};

/// A round-adaptive algorithm as a resumable state machine.
///
/// Protocol: the executor first calls `next_round(&[])`; the returned
/// queries are answered (all together), and their answers are passed to
/// the next `next_round` call, in order. An empty batch signals
/// completion, after which [`RoundAdaptive::output`] may be taken.
///
/// All randomness an implementation needs must live inside the
/// implementation (seeded at construction): executors contribute *only*
/// query answers. This separation is what makes "same output
/// distribution" (Theorems 9/11) meaningful and testable.
pub trait RoundAdaptive {
    /// The algorithm's result type.
    type Output;

    /// Receive answers to the previous batch and emit the next batch;
    /// empty means done. `answers` is empty on the first call.
    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query>;

    /// The final output; only meaningful after `next_round` returned an
    /// empty batch.
    fn output(&mut self) -> Self::Output;
}

/// Runs many instances of a round-adaptive algorithm in lock-step, merging
/// their per-round batches. The combined algorithm is done when every
/// instance is done; its round count is the *maximum* over instances, not
/// the sum — this is the pass-sharing trick behind Theorem 17.
pub struct Parallel<A: RoundAdaptive> {
    instances: Vec<A>,
    /// Pending query count per instance for the current round.
    pending: Vec<usize>,
    started: bool,
}

impl<A: RoundAdaptive> Parallel<A> {
    /// Combine instances.
    pub fn new(instances: Vec<A>) -> Self {
        let n = instances.len();
        Parallel {
            instances,
            pending: vec![0; n],
            started: false,
        }
    }

    /// Number of managed instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl<A: RoundAdaptive> RoundAdaptive for Parallel<A> {
    type Output = Vec<A::Output>;

    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
        if self.started {
            debug_assert_eq!(
                answers.len(),
                self.pending.iter().sum::<usize>(),
                "answer batch size mismatch"
            );
        }
        self.started = true;
        // Batches shrink round over round; the previous round's pending
        // total is a good upper bound that avoids re-growing the merge
        // buffer under thousands of instances.
        let mut out = Vec::with_capacity(self.pending.iter().sum::<usize>().max(64));
        let mut cursor = 0usize;
        for (i, inst) in self.instances.iter_mut().enumerate() {
            let take = self.pending[i];
            let slice = &answers[cursor..cursor + take];
            cursor += take;
            let qs = inst.next_round(slice);
            self.pending[i] = qs.len();
            out.extend(qs);
        }
        out
    }

    fn output(&mut self) -> Vec<A::Output> {
        self.instances.iter_mut().map(|a| a.output()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::VertexId;

    /// Test fixture: asks for the degrees of `0..k`, one per round
    /// (deliberately many rounds), output = sum of degrees.
    struct SequentialDegreeSum {
        k: u32,
        next: u32,
        sum: usize,
    }

    impl RoundAdaptive for SequentialDegreeSum {
        type Output = usize;

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if let Some(a) = answers.first() {
                self.sum += a.expect_degree();
            }
            if self.next < self.k {
                let q = Query::Degree(VertexId(self.next));
                self.next += 1;
                vec![q]
            } else {
                Vec::new()
            }
        }

        fn output(&mut self) -> usize {
            self.sum
        }
    }

    /// One-round fixture: asks all degrees at once.
    struct BatchedDegreeSum {
        k: u32,
        asked: bool,
        sum: usize,
    }

    impl RoundAdaptive for BatchedDegreeSum {
        type Output = usize;

        fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.sum = answers.iter().map(|a| a.expect_degree()).sum();
                return Vec::new();
            }
            self.asked = true;
            (0..self.k).map(|v| Query::Degree(VertexId(v))).collect()
        }

        fn output(&mut self) -> usize {
            self.sum
        }
    }

    fn drive<A: RoundAdaptive>(mut alg: A, degree_of: impl Fn(u32) -> usize) -> (A::Output, usize) {
        let mut answers: Vec<Answer> = Vec::new();
        let mut rounds = 0;
        loop {
            let batch = alg.next_round(&answers);
            if batch.is_empty() {
                break;
            }
            rounds += 1;
            answers = batch
                .iter()
                .map(|q| match q {
                    Query::Degree(v) => Answer::Degree(degree_of(v.0)),
                    _ => unreachable!(),
                })
                .collect();
        }
        (alg.output(), rounds)
    }

    #[test]
    fn sequential_uses_k_rounds() {
        let alg = SequentialDegreeSum {
            k: 5,
            next: 0,
            sum: 0,
        };
        let (sum, rounds) = drive(alg, |v| v as usize);
        assert_eq!(sum, 1 + 2 + 3 + 4);
        assert_eq!(rounds, 5);
    }

    #[test]
    fn batched_uses_one_round() {
        let alg = BatchedDegreeSum {
            k: 5,
            asked: false,
            sum: 0,
        };
        let (sum, rounds) = drive(alg, |v| v as usize);
        assert_eq!(sum, 10);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn parallel_shares_rounds() {
        // 10 sequential instances in parallel: still k rounds, not 10k.
        let insts: Vec<SequentialDegreeSum> = (0..10)
            .map(|_| SequentialDegreeSum {
                k: 5,
                next: 0,
                sum: 0,
            })
            .collect();
        let par = Parallel::new(insts);
        let (outputs, rounds) = drive(par, |v| v as usize);
        assert_eq!(outputs, vec![10; 10]);
        assert_eq!(rounds, 5);
    }

    #[test]
    fn parallel_with_uneven_lengths() {
        let insts = vec![
            SequentialDegreeSum {
                k: 2,
                next: 0,
                sum: 0,
            },
            SequentialDegreeSum {
                k: 6,
                next: 0,
                sum: 0,
            },
        ];
        let par = Parallel::new(insts);
        let (outputs, rounds) = drive(par, |_| 1);
        assert_eq!(outputs, vec![2, 6]);
        assert_eq!(rounds, 6); // max, not sum
    }

    #[test]
    fn parallel_empty() {
        let par: Parallel<SequentialDegreeSum> = Parallel::new(vec![]);
        let (outputs, rounds) = drive(par, |_| 0);
        assert!(outputs.is_empty());
        assert_eq!(rounds, 0);
    }
}
