//! Sharded pass emulation: per-shard QueryRouters over a hash-partitioned
//! feed, merged back into single-stream answers — *exactly*.
//!
//! One round's merged batch is split by routing key with the same hash
//! the [`ShardedFeed`] partitions updates with: vertex-keyed queries
//! (`f2`, both `f3` forms) go to the shard of their vertex, `f4` goes to
//! the shard of the edge's canonical endpoint, and the two global kinds
//! stay with the driver (`EdgeCount` is answered from the feed's net
//! delta; `f1` position targets are drawn centrally and matched against
//! the global positions each delivery carries). Each shard then rebuilds
//! its pooled router from the [`crate::arena::RouterArena`] and replays
//! only its own buffer.
//!
//! **Equivalence, not approximation.** The sharded pass produces answers
//! byte-identical to the single-stream executors (and therefore to the
//! frozen `crate::reference` oracle) for every fixed seed and any shard
//! count, because nothing about a query's answer depends on updates its
//! shard doesn't see:
//!
//! * a shard receives every update incident to a vertex it owns, in
//!   stream order, so degree counts, watcher arrivals, and neighbor
//!   sampler offer sequences are unchanged;
//! * samplers are seeded by their **global** batch slot
//!   (`split_seed(pass_seed, slot)`), the same coins the single-stream
//!   executors hand out;
//! * `f1` targets are drawn from the pass rng in batch order before any
//!   shard runs — the same draw sequence as a single-stream pass — and
//!   matched by global position (duplicate deliveries record identical
//!   hits);
//! * turnstile `f1` ℓ₀-banks are linear sketches: every shard feeds an
//!   identically-seeded bank with its *owned* deliveries only, and
//!   [`L0Sampler::merge`] reassembles the exact single-stream state.
//!
//! `tests/sharded_equivalence.rs` pins all of this against
//! `sgs_query::reference` for shard counts 1, 2, 4, 7.
//!
//! Execution: one worker per shard under `std::thread::scope` when the
//! injected [`ExecPolicy`] says to thread (default: when the host has
//! more than one core; the `sgs` CLI maps `SGS_SHARD_THREADS=0|1` to a
//! policy at startup — the library never reads the environment);
//! per-shard feed durations are recorded in the arena either way, so
//! `benches/sharded.rs` can report the critical-path (max-shard) pass
//! latency a one-core-per-shard deployment would see.

use crate::accounting::ExecReport;
use crate::arena::{RouterArena, ShardSlot};
use crate::exec::{sort_targets, PassOpts, ANSWER_BYTES};
use crate::policy::ExecPolicy;
use crate::query::{Answer, Query};
use crate::round::RoundAdaptive;
use crate::router::RouterMode;
use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::l0::L0Sampler;
use sgs_stream::persist::{frame, read_frame_of, Decoder, Encoder, PersistResult, KIND_PASS_STATE};
use sgs_stream::reservoir::ReservoirBank;
use sgs_stream::sharded::{ShardMap, ShardUpdate, ShardedFeed};
use sgs_stream::EdgeUpdate;
use std::time::Instant;

/// What one shard reports back to the merge step.
pub(crate) struct ShardOutcome {
    /// `f1` position hits, keyed by **global** slot. Duplicated across
    /// shards when an update was delivered to both endpoints' shards —
    /// duplicates carry identical edges, so merge order is irrelevant.
    pub(crate) edge_hits: Vec<(u32, Edge)>,
    /// Turnstile only: the shard's identically-seeded `f1` ℓ₀-bank over
    /// its owned deliveries, to be merged across shards.
    pub(crate) f1_bank: Vec<L0Sampler>,
    /// Measured sketch/router footprint of this shard's pass state.
    pub(crate) space_bytes: usize,
}

/// Split a batch into per-shard sub-batches (vertex/edge-keyed kinds) and
/// the driver-kept global slot lists (`EdgeCount`, `RandomEdge`). Routing
/// goes through the feed's [`ShardMap`] — the same placement (uniform
/// hash plus any load-balancing overrides) the delivery buffers were
/// built with, which is exactly why placement never changes answers.
pub(crate) fn split_batch(
    batch: &[Query],
    mode: RouterMode,
    map: &ShardMap,
    arena: &mut RouterArena,
) {
    let shards = map.num_shards();
    arena.ensure_shards(shards);
    for slot in &mut arena.slots[..shards] {
        slot.sub_batch.clear();
        slot.slot_map.clear();
    }
    arena.scratch_count.clear();
    arena.scratch_edge.clear();
    for (i, q) in batch.iter().enumerate() {
        let shard = match *q {
            Query::EdgeCount => {
                arena.scratch_count.push(i as u32);
                continue;
            }
            Query::RandomEdge => {
                arena.scratch_edge.push(i as u32);
                continue;
            }
            Query::Degree(v) | Query::RandomNeighbor(v) => map.shard_of(v.0),
            Query::IthNeighbor(v, _) => {
                if mode == RouterMode::Turnstile {
                    panic!(
                        "IthNeighbor is not available in the turnstile model \
                         (Definition 10 replaces it with RandomNeighbor)"
                    );
                }
                map.shard_of(v.0)
            }
            // The canonical endpoint's shard sees every update of this
            // edge (it is an endpoint), so it can answer `f4` alone.
            Query::Adjacent(u, v) => map.shard_of(Edge::new(u, v).u().0),
        };
        let slot = &mut arena.slots[shard];
        slot.sub_batch.push(*q);
        slot.slot_map.push(i as u32);
    }
}

/// Draw the pass's `f1` position targets centrally, in batch order — the
/// exact coin sequence a single-stream pass consumes — then sort by
/// position for cursor matching.
pub(crate) fn draw_targets(
    batch: &[Query],
    stream_len: u64,
    pass_seed: u64,
    targets: &mut Vec<(u64, u32)>,
) {
    targets.clear();
    if stream_len == 0 {
        return;
    }
    let mut rng = FastRng::seed_from_u64(pass_seed);
    for (i, q) in batch.iter().enumerate() {
        if matches!(q, Query::RandomEdge) {
            targets.push((rng.gen_range(0..stream_len), i as u32));
        }
    }
    sort_targets(targets, stream_len);
}

/// One shard's insertion-model pass as a **resumable state machine**:
/// the per-delivery work, decoupled from where deliveries come from.
/// The scoped-thread path feeds it the shard buffer in one call; the
/// broadcast path feeds it ring blocks filtered down to this shard's
/// deliveries as they arrive at the cursor. Delivery *chunking* differs
/// between the two, but chunk boundaries never change an answer (the
/// block-equivalence property), so both paths stay byte-identical to
/// the single-stream executor.
pub(crate) struct InsertionShardPass<'a> {
    slot: &'a mut ShardSlot,
    targets: &'a [(u64, u32)],
    opts: PassOpts,
    reservoirs: ReservoirBank<Edge>,
    edge_hits: Vec<(u32, Edge)>,
    cursor: usize,
    buf: Vec<EdgeUpdate>,
}

impl<'a> InsertionShardPass<'a> {
    /// Rebuild the pooled router and seed the pass state. The
    /// relaxed-f3 reservoir bank is aligned with the shard router's
    /// pooled slots and seeded by *global* batch slot — the
    /// single-stream coins. A neighbor sampler's vertex lives entirely
    /// in this shard, so its offer (and therefore draw) sequence is
    /// exactly the single-stream one in either reservoir mode.
    pub(crate) fn new(
        slot: &'a mut ShardSlot,
        targets: &'a [(u64, u32)],
        pass_seed: u64,
        opts: PassOpts,
    ) -> Self {
        slot.router.rebuild(&slot.sub_batch, RouterMode::Insertion);
        let mut reservoirs: ReservoirBank<Edge> = ReservoirBank::from_seeds(
            slot.router
                .neighbor_slots()
                .iter()
                .map(|&ls| split_seed(pass_seed, slot.slot_map[ls as usize] as u64)),
            opts.reservoir,
        );
        reservoirs.bind_cohorts(slot.router.neighbor_group_ranges());
        InsertionShardPass {
            slot,
            targets,
            opts,
            reservoirs,
            edge_hits: Vec::new(),
            cursor: 0,
            buf: Vec::new(),
        }
    }

    /// Absorb the next run of deliveries (global stream order, possibly
    /// a partial prefix — callable repeatedly).
    pub(crate) fn feed(&mut self, deliveries: &[ShardUpdate]) {
        let block = self.opts.block;
        if block <= 1 {
            for su in deliveries {
                debug_assert!(su.update.is_insert(), "insertion executor fed a deletion");
                let pos = su.position as u64;
                // Skip targets whose position lives in another shard's
                // buffer, then record hits at this global position.
                while self.cursor < self.targets.len() && self.targets[self.cursor].0 < pos {
                    self.cursor += 1;
                }
                while self.cursor < self.targets.len() && self.targets[self.cursor].0 == pos {
                    self.edge_hits
                        .push((self.targets[self.cursor].1, su.update.edge));
                    self.cursor += 1;
                }
                let edge = su.update.edge;
                let res = &mut self.reservoirs;
                self.slot.router.feed(su.update, |s, e| {
                    res.offer_cohort(s as usize, e as usize, edge)
                });
            }
        } else {
            // Blocked path: position targets are matched per delivery
            // (they carry global positions), then each block goes
            // through the router's batched-probe drain.
            let mut buf = std::mem::take(&mut self.buf);
            for chunk in deliveries.chunks(block) {
                buf.clear();
                for su in chunk {
                    debug_assert!(su.update.is_insert(), "insertion executor fed a deletion");
                    let pos = su.position as u64;
                    while self.cursor < self.targets.len() && self.targets[self.cursor].0 < pos {
                        self.cursor += 1;
                    }
                    while self.cursor < self.targets.len() && self.targets[self.cursor].0 == pos {
                        self.edge_hits
                            .push((self.targets[self.cursor].1, su.update.edge));
                        self.cursor += 1;
                    }
                    buf.push(su.update);
                }
                let res = &mut self.reservoirs;
                self.slot.router.feed_block(&buf, |j, s, e| {
                    res.offer_cohort(s as usize, e as usize, buf[j].edge)
                });
            }
            self.buf = buf;
        }
    }

    /// Record this pass's feed duration into the arena slot (the same
    /// telemetry the scoped-thread wrappers record around their one
    /// `feed` call; the broadcast drivers call this before `finish`).
    pub(crate) fn record_pass_nanos(&mut self, nanos: u64) {
        self.slot.pass_nanos.push(nanos);
    }

    /// Serialize the mutable mid-pass state: the reservoir bank (RNG
    /// words included), the `f1` position hits recorded so far, and the
    /// target cursor. The router, targets, and batch are *not* included
    /// — they are rebuilt deterministically by [`InsertionShardPass::new`]
    /// from the round's batch and pass seed, so a restored pass resumes
    /// byte-identically from the snapshot's delivery boundary.
    pub(crate) fn snapshot_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u8(0); // model tag: insertion
        self.slot.router.encode_feed_state(&mut enc);
        enc.u64(self.cursor as u64);
        enc.u64(self.edge_hits.len() as u64);
        for &(slot, e) in &self.edge_hits {
            enc.u32(slot);
            enc.edge(e);
        }
        enc.blob(&self.reservoirs.to_persist_bytes());
        frame(KIND_PASS_STATE, &enc.into_bytes())
    }

    /// Restore mid-pass state captured by
    /// [`InsertionShardPass::snapshot_state`] into a freshly built pass
    /// over the same batch, targets, pass seed, and options.
    pub(crate) fn restore_state(&mut self, bytes: &[u8]) -> PersistResult<()> {
        let f = read_frame_of(bytes, 0, KIND_PASS_STATE)?;
        let mut dec = Decoder::new(f.payload);
        if dec.u8("pass model")? != 0 {
            return Err(dec.corrupt("pass state is not an insertion pass"));
        }
        self.slot.router.restore_feed_state(&mut dec)?;
        let cursor = dec.u64("target cursor")? as usize;
        if cursor > self.targets.len() {
            return Err(dec.corrupt(format!(
                "target cursor {cursor} exceeds {} targets",
                self.targets.len()
            )));
        }
        let hits = dec.count(12, "edge hits")?;
        let mut edge_hits = Vec::with_capacity(hits);
        for _ in 0..hits {
            let slot = dec.u32("hit slot")?;
            let e = dec.edge("hit edge")?;
            edge_hits.push((slot, e));
        }
        let res = dec.blob("reservoir bank")?;
        dec.finish()?;
        self.reservoirs.restore_from_persist_bytes(res)?;
        self.edge_hits = edge_hits;
        self.cursor = cursor;
        Ok(())
    }

    /// End of stream: fill shard-local answers and report the outcome.
    pub(crate) fn finish(self) -> ShardOutcome {
        let InsertionShardPass {
            slot,
            reservoirs,
            edge_hits,
            ..
        } = self;
        let space_bytes = slot.router.space_bytes() + reservoirs.space_bytes();
        slot.answers.clear();
        slot.answers
            .resize(slot.sub_batch.len(), Answer::Edge(None));
        for ((&ls, v), res) in slot
            .router
            .neighbor_slots()
            .iter()
            .zip(slot.router.neighbor_vertices())
            .zip(reservoirs.samples_iter())
        {
            slot.answers[ls as usize] = Answer::Neighbor(res.map(|e| e.other(v)));
        }
        slot.router.distribute(&mut slot.answers);
        ShardOutcome {
            edge_hits,
            f1_bank: Vec::new(),
            space_bytes,
        }
    }
}

/// One shard's insertion-model pass over its scoped-thread buffer.
fn run_insertion_shard(
    slot: &mut ShardSlot,
    feed: &ShardedFeed,
    shard_id: usize,
    targets: &[(u64, u32)],
    pass_seed: u64,
    opts: PassOpts,
) -> ShardOutcome {
    let t0 = Instant::now();
    let mut pass = InsertionShardPass::new(&mut *slot, targets, pass_seed, opts);
    pass.feed(feed.shard(shard_id));
    let out = pass.finish();
    slot.pass_nanos.push(t0.elapsed().as_nanos() as u64);
    out
}

/// One shard's turnstile-model pass as a resumable state machine (see
/// [`InsertionShardPass`]).
pub(crate) struct TurnstileShardPass<'a> {
    slot: &'a mut ShardSlot,
    opts: PassOpts,
    f1_bank: Vec<L0Sampler>,
    nbr_samplers: Vec<L0Sampler>,
    nbr_verts: Vec<VertexId>,
    buf: Vec<EdgeUpdate>,
    owned_kd: Vec<(u64, i64)>,
}

impl<'a> TurnstileShardPass<'a> {
    /// Rebuild the pooled router and seed the sketch banks. Every shard
    /// keeps the full `f1` bank, identically seeded by global slot, and
    /// feeds it *owned* deliveries only: merging the banks across
    /// shards reassembles the exact single-stream sketch state
    /// (ℓ₀-samplers are linear).
    pub(crate) fn new(
        slot: &'a mut ShardSlot,
        num_vertices: usize,
        f1_slots: &[u32],
        pass_seed: u64,
        opts: PassOpts,
    ) -> Self {
        slot.router.rebuild(&slot.sub_batch, RouterMode::Turnstile);
        let f1_bank: Vec<L0Sampler> = f1_slots
            .iter()
            .map(|&gs| L0Sampler::for_edge_domain(num_vertices, split_seed(pass_seed, gs as u64)))
            .collect();
        let nbr_samplers: Vec<L0Sampler> = slot
            .router
            .neighbor_slots()
            .iter()
            .map(|&ls| {
                L0Sampler::for_edge_domain(
                    num_vertices,
                    split_seed(pass_seed, slot.slot_map[ls as usize] as u64),
                )
            })
            .collect();
        let nbr_verts: Vec<VertexId> = slot.router.neighbor_vertices().collect();
        TurnstileShardPass {
            slot,
            opts,
            f1_bank,
            nbr_samplers,
            nbr_verts,
            buf: Vec::new(),
            owned_kd: Vec::new(),
        }
    }

    /// Absorb the next run of deliveries (callable repeatedly).
    pub(crate) fn feed(&mut self, deliveries: &[ShardUpdate]) {
        let l0 = self.opts.l0;
        if self.opts.block <= 1 {
            for su in deliveries {
                let d = su.update.delta as i64;
                if su.owned {
                    let key = su.update.edge.key();
                    for s in &mut self.f1_bank {
                        s.update_with(l0, key, d);
                    }
                }
                let edge = su.update.edge;
                let samplers = &mut self.nbr_samplers;
                let verts = &self.nbr_verts;
                self.slot.router.feed(su.update, |s, e| {
                    for i in s as usize..e as usize {
                        samplers[i].update_with(l0, edge.other(verts[i]).0 as u64, d);
                    }
                });
            }
        } else {
            // Blocked path: the f1 bank absorbs each block's *owned*
            // updates samplers outer, updates inner (ℓ₀ planes
            // cache-hot per bank; bit-identical because detector fields
            // are additive), and the router drains the full block
            // through its batched probes.
            let mut buf = std::mem::take(&mut self.buf);
            let mut owned_kd = std::mem::take(&mut self.owned_kd);
            for chunk in deliveries.chunks(self.opts.block) {
                buf.clear();
                owned_kd.clear();
                for su in chunk {
                    if su.owned {
                        owned_kd.push((su.update.edge.key(), su.update.delta as i64));
                    }
                    buf.push(su.update);
                }
                for s in &mut self.f1_bank {
                    s.update_batch_with(l0, &owned_kd);
                }
                let samplers = &mut self.nbr_samplers;
                let verts = &self.nbr_verts;
                self.slot.router.feed_block(&buf, |j, s, e| {
                    let u = buf[j];
                    for i in s as usize..e as usize {
                        samplers[i].update_with(
                            l0,
                            u.edge.other(verts[i]).0 as u64,
                            u.delta as i64,
                        );
                    }
                });
            }
            self.buf = buf;
            self.owned_kd = owned_kd;
        }
    }

    /// See [`InsertionShardPass::record_pass_nanos`].
    pub(crate) fn record_pass_nanos(&mut self, nanos: u64) {
        self.slot.pass_nanos.push(nanos);
    }

    /// Serialize the mutable mid-pass state: every ℓ₀-sampler of the
    /// `f1` bank and the neighbor bank, counters and all. Router and
    /// vertex lists are rebuilt by [`TurnstileShardPass::new`].
    pub(crate) fn snapshot_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u8(1); // model tag: turnstile
        self.slot.router.encode_feed_state(&mut enc);
        enc.u64(self.f1_bank.len() as u64);
        for s in &self.f1_bank {
            enc.blob(&s.to_persist_bytes());
        }
        enc.u64(self.nbr_samplers.len() as u64);
        for s in &self.nbr_samplers {
            enc.blob(&s.to_persist_bytes());
        }
        frame(KIND_PASS_STATE, &enc.into_bytes())
    }

    /// Restore mid-pass state captured by
    /// [`TurnstileShardPass::snapshot_state`] into a freshly built pass
    /// over the same batch, `f1` slots, and pass seed.
    pub(crate) fn restore_state(&mut self, bytes: &[u8]) -> PersistResult<()> {
        let f = read_frame_of(bytes, 0, KIND_PASS_STATE)?;
        let mut dec = Decoder::new(f.payload);
        if dec.u8("pass model")? != 1 {
            return Err(dec.corrupt("pass state is not a turnstile pass"));
        }
        self.slot.router.restore_feed_state(&mut dec)?;
        let f1 = dec.count(8, "f1 bank")?;
        if f1 != self.f1_bank.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {f1} f1 samplers, pass expects {}",
                self.f1_bank.len()
            )));
        }
        let mut f1_bank = Vec::with_capacity(f1);
        for _ in 0..f1 {
            f1_bank.push(L0Sampler::from_persist_bytes(dec.blob("f1 sampler")?)?);
        }
        let nbr = dec.count(8, "neighbor bank")?;
        if nbr != self.nbr_samplers.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {nbr} neighbor samplers, pass expects {}",
                self.nbr_samplers.len()
            )));
        }
        let mut nbr_samplers = Vec::with_capacity(nbr);
        for _ in 0..nbr {
            nbr_samplers.push(L0Sampler::from_persist_bytes(
                dec.blob("neighbor sampler")?,
            )?);
        }
        dec.finish()?;
        self.f1_bank = f1_bank;
        self.nbr_samplers = nbr_samplers;
        Ok(())
    }

    /// End of stream: fill shard-local answers and report the outcome.
    pub(crate) fn finish(self) -> ShardOutcome {
        let TurnstileShardPass {
            slot,
            f1_bank,
            nbr_samplers,
            ..
        } = self;
        let space_bytes = slot.router.space_bytes()
            + f1_bank
                .iter()
                .chain(&nbr_samplers)
                .map(sgs_stream::SpaceUsage::space_bytes)
                .sum::<usize>();
        slot.answers.clear();
        slot.answers
            .resize(slot.sub_batch.len(), Answer::Edge(None));
        for (&ls, s) in slot.router.neighbor_slots().iter().zip(&nbr_samplers) {
            slot.answers[ls as usize] = Answer::Neighbor(s.sample().map(|k| VertexId(k as u32)));
        }
        slot.router.distribute(&mut slot.answers);
        ShardOutcome {
            edge_hits: Vec::new(),
            f1_bank,
            space_bytes,
        }
    }
}

/// One shard's turnstile-model pass over its scoped-thread buffer.
fn run_turnstile_shard(
    slot: &mut ShardSlot,
    feed: &ShardedFeed,
    shard_id: usize,
    f1_slots: &[u32],
    pass_seed: u64,
    opts: PassOpts,
) -> ShardOutcome {
    let t0 = Instant::now();
    let mut pass =
        TurnstileShardPass::new(&mut *slot, feed.num_vertices(), f1_slots, pass_seed, opts);
    pass.feed(feed.shard(shard_id));
    let out = pass.finish();
    slot.pass_nanos.push(t0.elapsed().as_nanos() as u64);
    out
}

/// Run every shard worker, threaded or inline per the injected
/// [`ExecPolicy`], collecting outcomes in shard order. Shared with the
/// multiplexer, whose shared-pass workers have the same shape.
pub(crate) fn run_shards<F>(
    slots: &mut [ShardSlot],
    policy: ExecPolicy,
    worker: F,
) -> Vec<ShardOutcome>
where
    F: Fn(usize, &mut ShardSlot) -> ShardOutcome + Sync,
{
    if policy.use_threads(slots.len()) {
        std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let worker = &worker;
                    scope.spawn(move || worker(i, slot))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    } else {
        slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| worker(i, slot))
            .collect()
    }
}

/// Merge shard-local answers and driver-kept state into the batch-wide
/// answer vector.
pub(crate) fn merge_answers(
    batch_len: usize,
    feed: &ShardedFeed,
    arena: &RouterArena,
    shards: usize,
    outcomes: &[ShardOutcome],
) -> Vec<Answer> {
    let mut answers = vec![Answer::Edge(None); batch_len];
    let m = feed.final_edge_count().max(0) as usize;
    for &s in &arena.scratch_count {
        answers[s as usize] = Answer::EdgeCount(m);
    }
    for slot in &arena.slots[..shards] {
        for (local, &global) in slot.slot_map.iter().enumerate() {
            answers[global as usize] = slot.answers[local];
        }
    }
    for o in outcomes {
        for &(slot, e) in &o.edge_hits {
            answers[slot as usize] = Answer::Edge(Some(e));
        }
    }
    answers
}

/// Answer one round's batch with one **sharded** insertion-only pass:
/// the N-shard generalization of [`crate::exec::answer_insertion_batch`],
/// byte-identical to it (and to the reference executor) for every shard
/// count. Returns the merged answers and the measured pass footprint.
pub fn answer_insertion_batch_sharded(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_sharded_with_opts(batch, feed, pass_seed, arena, PassOpts::default())
}

/// [`answer_insertion_batch_sharded`] with an explicit feed block size
/// (`block <= 1` = scalar per-update path on every shard).
pub fn answer_insertion_batch_sharded_with_block(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_sharded_with_opts(
        batch,
        feed,
        pass_seed,
        arena,
        PassOpts::with_block(block),
    )
}

/// [`answer_insertion_batch_sharded`] with full feed-path options
/// ([`PassOpts`]: block size + relaxed-`f3` reservoir mode). For a fixed
/// mode the sharded answers stay byte-identical to the single-stream
/// pass at any shard count — a neighbor sampler's vertex lives entirely
/// in one shard, so its offer/draw sequence is unchanged whichever
/// acceptance scheme runs it.
pub fn answer_insertion_batch_sharded_with_opts(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
) -> (Vec<Answer>, usize) {
    answer_insertion_batch_sharded_with_exec(
        batch,
        feed,
        pass_seed,
        arena,
        opts,
        ExecPolicy::default(),
    )
}

/// [`answer_insertion_batch_sharded_with_opts`] with an injected
/// [`ExecPolicy`] (thread-or-not + pinning) instead of the default
/// host-adaptive one. Answers are identical under every policy.
pub fn answer_insertion_batch_sharded_with_exec(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    if shards == 1 {
        // Single shard: skip the split/scatter machinery and run the
        // direct pass emulation over the feed (its `EdgeStream` replay
        // reconstructs the source order and counts the logical pass) —
        // existing single-stream callers keep the PR-1 per-pass cost.
        arena.ensure_shards(1);
        let t0 = Instant::now();
        let out = crate::exec::answer_insertion_batch_with_opts(batch, feed, pass_seed, opts);
        arena.slots[0]
            .pass_nanos
            .push(t0.elapsed().as_nanos() as u64);
        return out;
    }
    feed.begin_pass();
    split_batch(batch, RouterMode::Insertion, feed.shard_map(), arena);
    let mut targets = std::mem::take(&mut arena.scratch_targets);
    draw_targets(batch, feed.stream_len() as u64, pass_seed, &mut targets);
    let outcomes = run_shards(&mut arena.slots[..shards], policy, |i, slot| {
        run_insertion_shard(slot, feed, i, &targets, pass_seed, opts)
    });
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>() + targets.len() * 16;
    arena.scratch_targets = targets;
    let answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
    (answers, space)
}

/// Answer one round's batch with one **sharded** turnstile pass: the
/// N-shard generalization of [`crate::exec::answer_turnstile_batch`],
/// byte-identical to it for every shard count.
pub fn answer_turnstile_batch_sharded(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_sharded_with_opts(batch, feed, pass_seed, arena, PassOpts::default())
}

/// [`answer_turnstile_batch_sharded`] with an explicit feed block size
/// (`block <= 1` = scalar per-update path on every shard).
pub fn answer_turnstile_batch_sharded_with_block(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_sharded_with_opts(
        batch,
        feed,
        pass_seed,
        arena,
        PassOpts::with_block(block),
    )
}

/// [`answer_turnstile_batch_sharded`] with full feed-path options
/// ([`PassOpts`]: block size + ℓ₀ feed path). Both knobs are
/// byte-identity-preserving, so the sharded answers match the
/// single-stream pass at any shard count under every combination.
pub fn answer_turnstile_batch_sharded_with_opts(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
) -> (Vec<Answer>, usize) {
    answer_turnstile_batch_sharded_with_exec(
        batch,
        feed,
        pass_seed,
        arena,
        opts,
        ExecPolicy::default(),
    )
}

/// [`answer_turnstile_batch_sharded_with_opts`] with an injected
/// [`ExecPolicy`]. Answers are identical under every policy.
pub fn answer_turnstile_batch_sharded_with_exec(
    batch: &[Query],
    feed: &ShardedFeed,
    pass_seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> (Vec<Answer>, usize) {
    let shards = feed.num_shards();
    if shards == 1 {
        // See answer_insertion_batch_sharded: direct pass over the feed.
        arena.ensure_shards(1);
        let t0 = Instant::now();
        let out = crate::exec::answer_turnstile_batch_with_opts(batch, feed, pass_seed, opts);
        arena.slots[0]
            .pass_nanos
            .push(t0.elapsed().as_nanos() as u64);
        return out;
    }
    feed.begin_pass();
    split_batch(batch, RouterMode::Turnstile, feed.shard_map(), arena);
    let f1_slots = std::mem::take(&mut arena.scratch_edge);
    let mut outcomes = run_shards(&mut arena.slots[..shards], policy, |i, slot| {
        run_turnstile_shard(slot, feed, i, &f1_slots, pass_seed, opts)
    });
    let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>();
    // Merge the per-shard f1 banks into shard 0's (linear sketches):
    // the result is the exact single-stream sketch state.
    let (head, rest) = outcomes.split_at_mut(1);
    for o in rest.iter() {
        for (a, b) in head[0].f1_bank.iter_mut().zip(&o.f1_bank) {
            a.merge(b);
        }
    }
    let mut answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
    for (&slot, s) in f1_slots.iter().zip(&outcomes[0].f1_bank) {
        answers[slot as usize] = Answer::Edge(s.sample().map(Edge::from_key));
    }
    arena.scratch_edge = f1_slots;
    (answers, space)
}

/// Execute a round-adaptive algorithm as a sharded insertion-only
/// streaming algorithm: one *logical* pass per round, fanned out over
/// the feed's shards. With one shard this **is** the single-stream
/// executor ([`crate::exec::run_insertion`] is exactly this call).
pub fn run_insertion_sharded<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
) -> (A::Output, ExecReport) {
    run_insertion_sharded_with_opts(alg, feed, seed, arena, PassOpts::default())
}

/// [`run_insertion_sharded`] with an explicit feed block size.
pub fn run_insertion_sharded_with_block<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> (A::Output, ExecReport) {
    run_insertion_sharded_with_opts(alg, feed, seed, arena, PassOpts::with_block(block))
}

/// [`run_insertion_sharded`] with full feed-path options ([`PassOpts`]).
pub fn run_insertion_sharded_with_opts<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
) -> (A::Output, ExecReport) {
    run_insertion_sharded_with_exec(alg, feed, seed, arena, opts, ExecPolicy::default())
}

/// [`run_insertion_sharded_with_opts`] with an explicit execution policy
/// governing the shard workers (serial / threaded / auto, core pinning).
pub fn run_insertion_sharded_with_exec<A: RoundAdaptive>(
    mut alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    arena.begin_run();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        let (a, space) = answer_insertion_batch_sharded_with_exec(
            &batch,
            feed,
            split_seed(seed, report.passes as u64),
            arena,
            opts,
            policy,
        );
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
        arena.note_round();
    }
    arena.end_run();
    (alg.output(), report)
}

/// Execute a round-adaptive algorithm as a sharded turnstile streaming
/// algorithm: one logical pass per round over N shards. With one shard
/// this is [`crate::exec::run_turnstile`].
pub fn run_turnstile_sharded<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
) -> (A::Output, ExecReport) {
    run_turnstile_sharded_with_opts(alg, feed, seed, arena, PassOpts::default())
}

/// [`run_turnstile_sharded`] with an explicit feed block size.
pub fn run_turnstile_sharded_with_block<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> (A::Output, ExecReport) {
    run_turnstile_sharded_with_opts(alg, feed, seed, arena, PassOpts::with_block(block))
}

/// [`run_turnstile_sharded`] with full feed-path options ([`PassOpts`]).
pub fn run_turnstile_sharded_with_opts<A: RoundAdaptive>(
    alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
) -> (A::Output, ExecReport) {
    run_turnstile_sharded_with_exec(alg, feed, seed, arena, opts, ExecPolicy::default())
}

/// [`run_turnstile_sharded_with_opts`] with an explicit execution
/// policy governing the shard workers.
pub fn run_turnstile_sharded_with_exec<A: RoundAdaptive>(
    mut alg: A,
    feed: &ShardedFeed,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> (A::Output, ExecReport) {
    let mut report = ExecReport::default();
    arena.begin_run();
    let mut answers: Vec<Answer> = Vec::new();
    loop {
        let batch = alg.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        report.rounds += 1;
        report.passes += 1;
        report.queries += batch.len();
        report.answer_bytes += batch.len() * ANSWER_BYTES;
        let (a, space) = answer_turnstile_batch_sharded_with_exec(
            &batch,
            feed,
            split_seed(seed, report.passes as u64),
            arena,
            opts,
            policy,
        );
        report.max_pass_space_bytes = report.max_pass_space_bytes.max(space);
        answers = a;
        arena.note_round();
    }
    arena.end_run();
    (alg.output(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{answer_insertion_batch, answer_turnstile_batch};
    use sgs_graph::gen;
    use sgs_stream::reservoir::ReservoirMode;
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn mixed_insertion_batch() -> Vec<Query> {
        let mut qs = vec![Query::EdgeCount, Query::RandomEdge];
        for v in 0..12u32 {
            qs.push(Query::Degree(VertexId(v % 7)));
            qs.push(Query::RandomNeighbor(VertexId(v)));
            qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
            qs.push(Query::IthNeighbor(VertexId(v), (v as u64 % 4) + 1));
            qs.push(Query::RandomEdge);
        }
        qs
    }

    #[test]
    fn sharded_insertion_batch_matches_unsharded_all_shard_counts() {
        // Swept over both reservoir modes: sharding must preserve the
        // exact coin sequence of whichever acceptance scheme is active.
        let g = gen::gnm(25, 90, 17);
        let ins = InsertionStream::from_graph(&g, 18);
        let batch = mixed_insertion_batch();
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let opts = PassOpts::with_reservoir(mode);
            for shards in [1usize, 2, 4, 7] {
                let feed = ShardedFeed::partition(&ins, shards);
                let mut arena = RouterArena::new();
                for pass_seed in 0..20u64 {
                    let (a, _) = crate::exec::answer_insertion_batch_with_opts(
                        &batch, &ins, pass_seed, opts,
                    );
                    let (b, _) = answer_insertion_batch_sharded_with_opts(
                        &batch, &feed, pass_seed, &mut arena, opts,
                    );
                    assert_eq!(a, b, "{mode:?}, {shards} shards, pass seed {pass_seed}");
                }
            }
        }
    }

    #[test]
    fn sharded_turnstile_batch_matches_unsharded_all_shard_counts() {
        let g = gen::gnm(25, 90, 19);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 20);
        let mut batch = mixed_insertion_batch();
        batch.retain(|q| !matches!(q, Query::IthNeighbor(..)));
        for shards in [1usize, 2, 4, 7] {
            let feed = ShardedFeed::partition(&tst, shards);
            let mut arena = RouterArena::new();
            for pass_seed in 0..10u64 {
                let (a, _) = answer_turnstile_batch(&batch, &tst, pass_seed);
                let (b, _) = answer_turnstile_batch_sharded(&batch, &feed, pass_seed, &mut arena);
                assert_eq!(a, b, "{shards} shards, pass seed {pass_seed}");
            }
        }
    }

    #[test]
    fn threaded_path_matches_sequential() {
        // Both execution policies must produce identical answers; the
        // injected ExecPolicy forces each schedule directly (even on
        // single-core hosts), with no process-global env mutation.
        let g = gen::gnm(20, 70, 23);
        let ins = InsertionStream::from_graph(&g, 24);
        let batch = mixed_insertion_batch();
        let (expected, _) = answer_insertion_batch(&batch, &ins, 5);
        let feed = ShardedFeed::partition(&ins, 4);
        let mut arena = RouterArena::new();
        for policy in [ExecPolicy::threaded(), ExecPolicy::serial()] {
            let (got, _) = answer_insertion_batch_sharded_with_exec(
                &batch,
                &feed,
                5,
                &mut arena,
                PassOpts::default(),
                policy,
            );
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn threaded_turnstile_path_matches_sequential() {
        let g = gen::gnm(20, 70, 25);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 26);
        let mut batch = mixed_insertion_batch();
        batch.retain(|q| !matches!(q, Query::IthNeighbor(..)));
        let (expected, _) = answer_turnstile_batch(&batch, &tst, 5);
        let feed = ShardedFeed::partition(&tst, 4);
        let mut arena = RouterArena::new();
        for policy in [ExecPolicy::threaded(), ExecPolicy::serial()] {
            let (got, _) = answer_turnstile_batch_sharded_with_exec(
                &batch,
                &feed,
                5,
                &mut arena,
                PassOpts::with_block(64),
                policy,
            );
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn logical_passes_track_rounds_not_shards() {
        let g = gen::gnm(18, 60, 29);
        let ins = InsertionStream::from_graph(&g, 30);
        let feed = ShardedFeed::partition(&ins, 5);
        let mut arena = RouterArena::new();
        let batch = mixed_insertion_batch();
        for pass_seed in 0..3u64 {
            let _ = answer_insertion_batch_sharded(&batch, &feed, pass_seed, &mut arena);
        }
        assert_eq!(feed.logical_passes(), 3, "5 shards × 3 passes = 3 passes");
    }

    #[test]
    #[should_panic(expected = "IthNeighbor is not available")]
    fn sharded_turnstile_rejects_indexed_neighbors() {
        let g = gen::gnm(5, 5, 1);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.0, 2);
        let feed = ShardedFeed::partition(&tst, 2);
        let mut arena = RouterArena::new();
        let _ = answer_turnstile_batch_sharded(
            &[Query::IthNeighbor(VertexId(0), 1)],
            &feed,
            3,
            &mut arena,
        );
    }

    #[test]
    fn empty_stream_answers_defaults() {
        let ins = InsertionStream::from_edge_order(4, vec![]);
        let feed = ShardedFeed::partition(&ins, 3);
        let mut arena = RouterArena::new();
        let batch = vec![
            Query::EdgeCount,
            Query::RandomEdge,
            Query::Degree(VertexId(1)),
            Query::RandomNeighbor(VertexId(2)),
        ];
        let (a, _) = answer_insertion_batch_sharded(&batch, &feed, 7, &mut arena);
        let (b, _) = answer_insertion_batch(&batch, &ins, 7);
        assert_eq!(a, b);
        assert_eq!(a[0], Answer::EdgeCount(0));
        assert_eq!(a[1], Answer::Edge(None));
    }
}
