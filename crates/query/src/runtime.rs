//! The **ShardRuntime**: persistent, optionally core-pinned shard
//! workers fed pass after pass through the broadcast ring.
//!
//! The scoped-thread schedules in [`crate::sharded`] and
//! [`crate::broadcast`] spawn fresh worker threads for every pass. That
//! is correct and simple, but on the hot serving path a multi-round run
//! pays thread spawn/join, first-touch page faults, and cold per-shard
//! state once *per pass*. This module keeps one long-lived worker per
//! shard for the lifetime of a run:
//!
//! * **Workers own their slot.** Each worker thread owns a
//!   [`ShardSlot`] — router, sub-batch, scratch — so every rebuild and
//!   feed of a shard's state happens on the same thread (and, when
//!   [`ExecPolicy::pin`] is set, the same core) for arena/allocation
//!   affinity. The driver's [`RouterArena`] keeps only the split/merge
//!   scratch plus telemetry.
//! * **Ping-pong buffers, no per-pass allocation.** A pass sends each
//!   worker its `sub_batch`/`slot_map` vectors by value and gets them
//!   back (with the answers) in the reply, so the buffers shuttle
//!   between driver and worker without reallocating once warm.
//! * **The ring is the feed.** Every pass opens one
//!   [`Broadcast`] session: workers drain their cursors through the
//!   blocking iterator; the driver pumps the producer — and any
//!   non-`'static` side sinks, which cannot cross into the persistent
//!   workers — cooperatively through the try-APIs, so it never blocks
//!   while a sink still needs draining.
//! * **Byte-identical answers.** The workers run the *same*
//!   [`InsertionShardPass`]/[`TurnstileShardPass`] state machines over
//!   the same per-shard delivery sequences with the same global-slot
//!   seeds; scheduling (and pinning) decides where the work runs, never
//!   what it computes. `tests/broadcast_equivalence.rs` pins the
//!   persistent path against the single-stream executors.
//!
//! [`crate::broadcast::run_insertion_broadcast_with_opts`] and its
//! turnstile sibling construct one runtime per run whenever the
//! injected policy threads, so round-adaptive algorithms reuse the same
//! workers across all their rounds.

use crate::arena::{RouterArena, ShardSlot};
use crate::broadcast::{filter_block, BroadcastOpts, SideSink};
use crate::exec::PassOpts;
use crate::policy::{host_cores, pin_current_thread, ExecPolicy};
use crate::query::{Answer, Query};
use crate::router::RouterMode;
use crate::sharded::{
    draw_targets, merge_answers, split_batch, InsertionShardPass, ShardOutcome, TurnstileShardPass,
};
use sgs_stream::broadcast::{Broadcast, BroadcastConsumer, RoutedProducer, TryNext};
use sgs_stream::sharded::{ShardUpdate, ShardedFeed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One pass's worth of work for a worker: the ring cursor to drain plus
/// the pass parameters. Buffers arrive by value and return in the
/// [`Reply`] (ping-pong reuse).
enum Task {
    Insertion {
        consumer: BroadcastConsumer,
        sub_batch: Vec<Query>,
        slot_map: Vec<u32>,
        targets: Arc<[(u64, u32)]>,
        pass_seed: u64,
        opts: PassOpts,
    },
    Turnstile {
        consumer: BroadcastConsumer,
        sub_batch: Vec<Query>,
        slot_map: Vec<u32>,
        f1_slots: Arc<[u32]>,
        num_vertices: usize,
        pass_seed: u64,
        opts: PassOpts,
    },
}

/// A worker's pass result: the outcome for the merge step, the answer
/// scatter buffers back for reuse, and the pass wall time for the
/// arena's critical-path telemetry.
struct Reply {
    outcome: ShardOutcome,
    answers: Vec<Answer>,
    sub_batch: Vec<Query>,
    slot_map: Vec<u32>,
    nanos: u64,
}

/// The worker body: pin if asked, then serve passes until the runtime
/// drops its task sender.
fn worker_loop(sid: usize, pin_core: Option<usize>, tasks: Receiver<Task>, replies: Sender<Reply>) {
    if let Some(core) = pin_core {
        // Best-effort placement hint; refusal (non-Linux, restricted
        // containers) changes nothing about the computation.
        let _ = pin_current_thread(core);
    }
    let mut slot = ShardSlot::default();
    let mut scratch: Vec<ShardUpdate> = Vec::new();
    while let Ok(task) = tasks.recv() {
        let reply = match task {
            Task::Insertion {
                consumer,
                sub_batch,
                slot_map,
                targets,
                pass_seed,
                opts,
            } => {
                slot.sub_batch = sub_batch;
                slot.slot_map = slot_map;
                let t0 = Instant::now();
                let mut pass = InsertionShardPass::new(&mut slot, &targets, pass_seed, opts);
                for block in consumer {
                    filter_block(&block, sid, &mut scratch);
                    pass.feed(&scratch);
                }
                let outcome = pass.finish();
                Reply {
                    outcome,
                    answers: std::mem::take(&mut slot.answers),
                    sub_batch: std::mem::take(&mut slot.sub_batch),
                    slot_map: std::mem::take(&mut slot.slot_map),
                    nanos: t0.elapsed().as_nanos() as u64,
                }
            }
            Task::Turnstile {
                consumer,
                sub_batch,
                slot_map,
                f1_slots,
                num_vertices,
                pass_seed,
                opts,
            } => {
                slot.sub_batch = sub_batch;
                slot.slot_map = slot_map;
                let t0 = Instant::now();
                let mut pass =
                    TurnstileShardPass::new(&mut slot, num_vertices, &f1_slots, pass_seed, opts);
                for b in consumer {
                    filter_block(&b, sid, &mut scratch);
                    pass.feed(&scratch);
                }
                let outcome = pass.finish();
                Reply {
                    outcome,
                    answers: std::mem::take(&mut slot.answers),
                    sub_batch: std::mem::take(&mut slot.sub_batch),
                    slot_map: std::mem::take(&mut slot.slot_map),
                    nanos: t0.elapsed().as_nanos() as u64,
                }
            }
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
}

/// A persistent pool of per-shard broadcast workers: spawn once, run
/// any number of passes, drop to shut down. See the module docs.
pub struct ShardRuntime {
    shards: usize,
    tasks: Vec<Sender<Task>>,
    replies: Vec<Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardRuntime {
    /// Spawn one worker per shard. With `policy.pin`, worker `i` binds
    /// itself to core `i mod host_cores()` (Linux, best-effort).
    pub fn new(shards: usize, policy: ExecPolicy) -> Self {
        let shards = shards.max(1);
        let cores = host_cores();
        let mut tasks = Vec::with_capacity(shards);
        let mut replies = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for sid in 0..shards {
            let (task_tx, task_rx) = channel::<Task>();
            let (reply_tx, reply_rx) = channel::<Reply>();
            let pin_core = policy.pin.then_some(sid % cores);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sgs-shard-{sid}"))
                    .spawn(move || worker_loop(sid, pin_core, task_rx, reply_tx))
                    .expect("spawn shard worker"),
            );
            tasks.push(task_tx);
            replies.push(reply_rx);
        }
        ShardRuntime {
            shards,
            tasks,
            replies,
            handles,
        }
    }

    /// Number of persistent workers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Drive one ring session: the workers already hold their tasks
    /// (cursors included); the driver pushes the stream and drains the
    /// side sinks without ever blocking on the ring.
    fn drive(
        &self,
        feed: &ShardedFeed,
        ring: &Broadcast,
        block: usize,
        side: &mut [SideSink<'_>],
        side_consumers: Vec<BroadcastConsumer>,
    ) {
        let producer = RoutedProducer::new(feed, block);
        if side.is_empty() {
            // Nothing else to serve on this thread: the blocking
            // producer path parks politely under backpressure.
            producer.run(ring);
            return;
        }
        let mut producer = producer;
        let mut side_workers: Vec<(&mut SideSink<'_>, BroadcastConsumer, bool)> = side
            .iter_mut()
            .zip(side_consumers)
            .map(|(s, c)| (s, c, false))
            .collect();
        loop {
            let produced = producer.pump(ring);
            let mut all_ended = true;
            let mut progressed = false;
            for (sink, c, ended) in side_workers.iter_mut() {
                while !*ended {
                    match c.try_next() {
                        TryNext::Block(b) => {
                            sink(&b);
                            progressed = true;
                        }
                        TryNext::Pending => break,
                        TryNext::Ended => *ended = true,
                    }
                }
                all_ended &= *ended;
            }
            if produced && all_ended {
                break;
            }
            if !progressed {
                // Ring full and sinks starved: the shard workers hold
                // the slow cursors — give them the core.
                std::thread::yield_now();
            }
        }
    }

    /// Collect the pass replies in shard order, re-installing the
    /// ping-pong buffers (and the pass telemetry) into the arena so the
    /// shared [`merge_answers`] path works unchanged.
    fn collect(&self, arena: &mut RouterArena) -> Vec<ShardOutcome> {
        let mut outcomes = Vec::with_capacity(self.shards);
        for (sid, rx) in self.replies.iter().enumerate() {
            let r = rx
                .recv()
                .unwrap_or_else(|_| panic!("shard worker {sid} died mid-pass"));
            let slot = &mut arena.slots[sid];
            slot.answers = r.answers;
            slot.sub_batch = r.sub_batch;
            slot.slot_map = r.slot_map;
            slot.pass_nanos.push(r.nanos);
            outcomes.push(r.outcome);
        }
        outcomes
    }

    /// One insertion-model broadcast pass over the persistent workers —
    /// byte-identical to
    /// [`crate::broadcast::answer_insertion_batch_broadcast_with_opts`]
    /// (and therefore to the single-stream executors) for every shard
    /// count, ring geometry, and placement.
    #[allow(clippy::too_many_arguments)]
    pub fn insertion_pass(
        &mut self,
        batch: &[Query],
        feed: &ShardedFeed,
        pass_seed: u64,
        arena: &mut RouterArena,
        opts: PassOpts,
        bcast: BroadcastOpts,
        side: &mut [SideSink<'_>],
    ) -> (Vec<Answer>, usize) {
        assert_eq!(
            feed.num_shards(),
            self.shards,
            "runtime sized for a different shard count"
        );
        let shards = self.shards;
        split_batch(batch, RouterMode::Insertion, feed.shard_map(), arena);
        let mut targets = std::mem::take(&mut arena.scratch_targets);
        draw_targets(batch, feed.stream_len() as u64, pass_seed, &mut targets);
        let shared_targets: Arc<[(u64, u32)]> = targets.as_slice().into();
        let ring = Broadcast::new(bcast.ring_capacity);
        let shard_consumers: Vec<BroadcastConsumer> =
            (0..shards).map(|_| ring.subscribe()).collect();
        let side_consumers: Vec<BroadcastConsumer> =
            side.iter().map(|_| ring.subscribe()).collect();
        for (sid, consumer) in shard_consumers.into_iter().enumerate() {
            let slot = &mut arena.slots[sid];
            self.tasks[sid]
                .send(Task::Insertion {
                    consumer,
                    sub_batch: std::mem::take(&mut slot.sub_batch),
                    slot_map: std::mem::take(&mut slot.slot_map),
                    targets: shared_targets.clone(),
                    pass_seed,
                    opts,
                })
                .expect("shard worker gone");
        }
        self.drive(feed, &ring, bcast.ring_block, side, side_consumers);
        let outcomes = self.collect(arena);
        let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>() + targets.len() * 16;
        arena.scratch_targets = targets;
        let answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
        (answers, space)
    }

    /// One turnstile-model broadcast pass over the persistent workers —
    /// byte-identical to
    /// [`crate::broadcast::answer_turnstile_batch_broadcast_with_opts`].
    #[allow(clippy::too_many_arguments)]
    pub fn turnstile_pass(
        &mut self,
        batch: &[Query],
        feed: &ShardedFeed,
        pass_seed: u64,
        arena: &mut RouterArena,
        opts: PassOpts,
        bcast: BroadcastOpts,
        side: &mut [SideSink<'_>],
    ) -> (Vec<Answer>, usize) {
        assert_eq!(
            feed.num_shards(),
            self.shards,
            "runtime sized for a different shard count"
        );
        let shards = self.shards;
        split_batch(batch, RouterMode::Turnstile, feed.shard_map(), arena);
        let f1_slots = std::mem::take(&mut arena.scratch_edge);
        let shared_f1: Arc<[u32]> = f1_slots.as_slice().into();
        let ring = Broadcast::new(bcast.ring_capacity);
        let shard_consumers: Vec<BroadcastConsumer> =
            (0..shards).map(|_| ring.subscribe()).collect();
        let side_consumers: Vec<BroadcastConsumer> =
            side.iter().map(|_| ring.subscribe()).collect();
        for (sid, consumer) in shard_consumers.into_iter().enumerate() {
            let slot = &mut arena.slots[sid];
            self.tasks[sid]
                .send(Task::Turnstile {
                    consumer,
                    sub_batch: std::mem::take(&mut slot.sub_batch),
                    slot_map: std::mem::take(&mut slot.slot_map),
                    f1_slots: shared_f1.clone(),
                    num_vertices: feed.num_vertices(),
                    pass_seed,
                    opts,
                })
                .expect("shard worker gone");
        }
        self.drive(feed, &ring, bcast.ring_block, side, side_consumers);
        let mut outcomes = self.collect(arena);
        let space = outcomes.iter().map(|o| o.space_bytes).sum::<usize>();
        // Merge the per-shard f1 banks into shard 0's (linear sketches):
        // the result is the exact single-stream sketch state.
        let (head, rest) = outcomes.split_at_mut(1);
        for o in rest.iter() {
            for (a, b) in head[0].f1_bank.iter_mut().zip(&o.f1_bank) {
                a.merge(b);
            }
        }
        let mut answers = merge_answers(batch.len(), feed, arena, shards, &outcomes);
        for (&slot, s) in f1_slots.iter().zip(&outcomes[0].f1_bank) {
            answers[slot as usize] = Answer::Edge(s.sample().map(sgs_graph::Edge::from_key));
        }
        arena.scratch_edge = f1_slots;
        (answers, space)
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        // Closing the task channels ends every worker loop.
        self.tasks.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{answer_insertion_batch, answer_turnstile_batch};
    use sgs_graph::{gen, VertexId};
    use sgs_stream::sharded::RoutedUpdate;
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn mixed_insertion_batch() -> Vec<Query> {
        let mut qs = vec![Query::EdgeCount, Query::RandomEdge];
        for v in 0..12u32 {
            qs.push(Query::Degree(VertexId(v % 7)));
            qs.push(Query::RandomNeighbor(VertexId(v)));
            qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
            qs.push(Query::IthNeighbor(VertexId(v), (v as u64 % 4) + 1));
            qs.push(Query::RandomEdge);
        }
        qs
    }

    #[test]
    fn persistent_insertion_passes_match_single_stream_across_rounds() {
        let g = gen::gnm(25, 90, 217);
        let ins = InsertionStream::from_graph(&g, 218);
        let batch = mixed_insertion_batch();
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&ins, shards);
            let mut arena = RouterArena::new();
            // One runtime reused across every seed: the whole point.
            let mut rt = ShardRuntime::new(shards, ExecPolicy::threaded());
            for pass_seed in 0..8u64 {
                let (a, _) = answer_insertion_batch(&batch, &ins, pass_seed);
                let (b, _) = rt.insertion_pass(
                    &batch,
                    &feed,
                    pass_seed,
                    &mut arena,
                    PassOpts::default(),
                    BroadcastOpts::default(),
                    &mut [],
                );
                assert_eq!(a, b, "{shards} shards, pass seed {pass_seed}");
            }
        }
    }

    #[test]
    fn persistent_turnstile_passes_match_single_stream_across_rounds() {
        let g = gen::gnm(25, 90, 219);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 220);
        let mut batch = mixed_insertion_batch();
        batch.retain(|q| !matches!(q, Query::IthNeighbor(..)));
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&tst, shards);
            let mut arena = RouterArena::new();
            let mut rt = ShardRuntime::new(shards, ExecPolicy::threaded());
            for pass_seed in 0..5u64 {
                let (a, _) = answer_turnstile_batch(&batch, &tst, pass_seed);
                let (b, _) = rt.turnstile_pass(
                    &batch,
                    &feed,
                    pass_seed,
                    &mut arena,
                    PassOpts::default(),
                    BroadcastOpts::default(),
                    &mut [],
                );
                assert_eq!(a, b, "{shards} shards, pass seed {pass_seed}");
            }
        }
    }

    #[test]
    fn pinned_runtime_matches_unpinned() {
        let g = gen::gnm(22, 80, 221);
        let ins = InsertionStream::from_graph(&g, 222);
        let batch = mixed_insertion_batch();
        let feed = ShardedFeed::partition(&ins, 3);
        let (expected, _) = answer_insertion_batch(&batch, &ins, 9);
        for policy in [ExecPolicy::threaded(), ExecPolicy::threaded().with_pin()] {
            let mut arena = RouterArena::new();
            let mut rt = ShardRuntime::new(3, policy);
            let (got, _) = rt.insertion_pass(
                &batch,
                &feed,
                9,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::default(),
                &mut [],
            );
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn side_sinks_ride_the_persistent_ring() {
        let g = gen::gnm(22, 80, 223);
        let ins = InsertionStream::from_graph(&g, 224);
        let batch = mixed_insertion_batch();
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let (expected, _) = answer_insertion_batch(&batch, &ins, 11);
        let mut rt = ShardRuntime::new(2, ExecPolicy::threaded());
        let mut seen: Vec<RoutedUpdate> = Vec::new();
        let mut count = 0u64;
        {
            let mut sinks: Vec<SideSink<'_>> = vec![
                Box::new(|b: &[RoutedUpdate]| seen.extend_from_slice(b)),
                Box::new(|b: &[RoutedUpdate]| count += b.len() as u64),
            ];
            let (got, _) = rt.insertion_pass(
                &batch,
                &feed,
                11,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::default(),
                &mut sinks,
            );
            assert_eq!(got, expected);
        }
        assert_eq!(seen, feed.routed());
        assert_eq!(count, feed.stream_len() as u64);
    }

    #[test]
    fn telemetry_lands_in_the_arena_per_pass() {
        let g = gen::gnm(18, 60, 225);
        let ins = InsertionStream::from_graph(&g, 226);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let mut rt = ShardRuntime::new(2, ExecPolicy::threaded());
        let batch = mixed_insertion_batch();
        for pass_seed in 0..3u64 {
            let _ = rt.insertion_pass(
                &batch,
                &feed,
                pass_seed,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::default(),
                &mut [],
            );
        }
        let nanos = arena.shard_pass_nanos();
        assert_eq!(nanos.len(), 2);
        for shard in &nanos {
            assert_eq!(shard.len(), 3, "one telemetry sample per pass per shard");
        }
        assert_eq!(feed.logical_passes(), 3);
    }
}
