//! Parallel-runtime bench: the three PR-7 wins, each against the seam
//! it replaced, with equivalence asserted in-bench.
//!
//! * **ring** — ingest-bound counter fan-out at N = 1/2/4 consumers
//!   through the lock-free seqlock `Broadcast` ring vs the retired
//!   `MutexBroadcast` reference ring, both driven by the cooperative
//!   single-core schedule (try-APIs, no threads — reproducible on any
//!   host). The mutex ring pays a lock round-trip plus a `notify_all`
//!   per block on both ends and an `Arc` allocation per push; the
//!   seqlock ring publishes with two release stores and reads with an
//!   acquire pair.
//! * **workers** — a full multi-round relaxed-f3 estimator workload
//!   (the captured real batches, as in `benches/sharded.rs`) through
//!   the per-pass scoped-thread broadcast path (spawn + join every
//!   pass) vs one persistent [`ShardRuntime`] pool fed pass after pass,
//!   both under `ExecPolicy::threaded()`. Also recorded: `wall/auto`,
//!   the default policy on this host (cooperative on a single-core box)
//!   — the pre-PR number the acceptance criterion guards.
//! * **placement** — the same workload on a zipf hub stream, serial
//!   schedule, uniform hash placement vs the greedy
//!   [`ShardMap::balanced`] rebalance computed from
//!   `vertex_delivery_counts()`. Headline number is the critical path
//!   (Σ over passes of the slowest shard's isolated feed time — the
//!   pass latency of a one-core-per-shard deployment); the hottest
//!   shard's delivered-update count is recorded as the load proxy.
//!
//! Run `cargo bench -p sgs-bench --bench parallel` (add `smoke` for the
//! CI-sized configuration). Set `SGS_BENCH_JSON=<path>` to write the
//! machine-readable record committed as `BENCH_parallel.json`.

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::broadcast::{answer_insertion_batch_broadcast_with_opts, BroadcastOpts};
use sgs_query::exec::answer_insertion_batch;
use sgs_query::sharded::answer_insertion_batch_sharded_with_exec;
use sgs_query::{ExecPolicy, Parallel, PassOpts, Query, RoundAdaptive, RouterArena, ShardRuntime};
use sgs_stream::broadcast::{Broadcast, RoutedProducer, TryNext};
use sgs_stream::{InsertionStream, MutexBroadcast, ShardMap, ShardedFeed};
use std::hint::black_box;
use std::time::Instant;

/// Noise-robust sample statistic: minimum (scheduler noise on this box
/// is strictly additive — see `benches/sharded.rs`).
fn best(ns: Vec<u64>) -> u64 {
    ns.into_iter().min().unwrap_or(0)
}

fn human(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm-up
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    best(ns)
}

/// Cheap ingest-bound consumer state: tally + key checksum.
#[derive(Default, Clone, Copy, PartialEq, Debug)]
struct Counter {
    updates: u64,
    key_sum: u64,
}

impl Counter {
    #[inline]
    fn absorb(&mut self, key: u64) {
        self.updates += 1;
        self.key_sum = self.key_sum.wrapping_add(key);
    }
}

/// One lock-free ingest, N counter consumers, cooperative schedule.
fn lockfree_counters(feed: &ShardedFeed, n: usize, capacity: usize, block: usize) -> Vec<Counter> {
    let ring = Broadcast::new(capacity);
    let mut consumers: Vec<_> = (0..n)
        .map(|_| (ring.subscribe(), Counter::default(), false))
        .collect();
    let mut producer = RoutedProducer::new(feed, block);
    loop {
        let done = producer.pump(&ring);
        let mut all = true;
        for (c, state, ended) in consumers.iter_mut() {
            while !*ended {
                match c.try_next() {
                    TryNext::Block(b) => {
                        for r in b.iter() {
                            state.absorb(r.update.edge.key());
                        }
                    }
                    TryNext::Pending => break,
                    TryNext::Ended => *ended = true,
                }
            }
            all &= *ended;
        }
        if done && all {
            break;
        }
    }
    consumers.into_iter().map(|(_, s, _)| s).collect()
}

/// The same fan-out through the mutex/condvar reference ring.
fn mutex_counters(feed: &ShardedFeed, n: usize, capacity: usize, block: usize) -> Vec<Counter> {
    let ring = MutexBroadcast::new(capacity);
    let mut consumers: Vec<_> = (0..n)
        .map(|_| (ring.subscribe(), Counter::default(), false))
        .collect();
    let routed = feed.routed();
    let mut off = 0usize;
    let mut finished = false;
    loop {
        while off < routed.len() {
            let end = (off + block.max(1)).min(routed.len());
            if ring.try_push(&routed[off..end]) {
                off = end;
            } else {
                break;
            }
        }
        if off == routed.len() && !finished {
            ring.finish();
            finished = true;
        }
        let mut all = true;
        for (c, state, ended) in consumers.iter_mut() {
            while !*ended {
                match c.try_next() {
                    TryNext::Block(b) => {
                        for r in b.iter() {
                            state.absorb(r.update.edge.key());
                        }
                    }
                    TryNext::Pending => break,
                    TryNext::Ended => *ended = true,
                }
            }
            all &= *ended;
        }
        if finished && all {
            break;
        }
    }
    consumers.into_iter().map(|(_, s, _)| s).collect()
}

/// Capture the real per-round batches of one estimator run by driving
/// the protocol with the production executor (see `benches/sharded.rs`).
fn capture_batches(
    trials: usize,
    stream: &InsertionStream,
    bank_seed: u64,
    exec_seed: u64,
) -> Vec<(Vec<Query>, u64)> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let mut par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Relaxed,
                    sgs_stream::hash::split_seed(bank_seed, i as u64),
                )
            })
            .collect::<Vec<_>>(),
    );
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = sgs_stream::hash::split_seed(exec_seed, pass);
        let (a, _) = answer_insertion_batch(&batch, stream, pass_seed);
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

/// Time the captured answer sets through the per-pass scoped-thread
/// broadcast path (fresh threads every pass).
fn run_spawn_per_pass(
    batches: &[(Vec<Query>, u64)],
    feed: &ShardedFeed,
    samples: usize,
    bcast: BroadcastOpts,
) -> u64 {
    let mut arena = RouterArena::new();
    time(samples, || {
        for (batch, seed) in batches {
            black_box(answer_insertion_batch_broadcast_with_opts(
                batch,
                feed,
                *seed,
                &mut arena,
                PassOpts::default(),
                bcast,
                &mut [],
            ));
        }
    })
}

/// Time the same answer sets through one persistent worker pool.
fn run_persistent(
    batches: &[(Vec<Query>, u64)],
    feed: &ShardedFeed,
    samples: usize,
    bcast: BroadcastOpts,
) -> u64 {
    let mut arena = RouterArena::new();
    let mut rt = ShardRuntime::new(feed.num_shards(), bcast.policy);
    time(samples, || {
        for (batch, seed) in batches {
            black_box(rt.insertion_pass(
                batch,
                feed,
                *seed,
                &mut arena,
                PassOpts::default(),
                bcast,
                &mut [],
            ));
        }
    })
}

/// Serial sharded run returning (best wall ns, best critical-path ns):
/// critical path = Σ over passes of the slowest shard's isolated feed
/// time (see `benches/sharded.rs` for the derivation).
fn run_serial_critical(
    batches: &[(Vec<Query>, u64)],
    feed: &ShardedFeed,
    samples: usize,
) -> (u64, u64) {
    let mut arena = RouterArena::new();
    let opts = PassOpts::default();
    for _ in 0..2 {
        for (batch, seed) in batches {
            black_box(answer_insertion_batch_sharded_with_exec(
                batch,
                feed,
                *seed,
                &mut arena,
                opts,
                ExecPolicy::serial(),
            ));
        }
    }
    let _ = arena.take_shard_pass_nanos();
    let mut walls = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for (batch, seed) in batches {
            black_box(answer_insertion_batch_sharded_with_exec(
                batch,
                feed,
                *seed,
                &mut arena,
                opts,
                ExecPolicy::serial(),
            ));
        }
        walls.push(t0.elapsed().as_nanos() as u64);
    }
    let nanos = arena.take_shard_pass_nanos();
    let passes = nanos[0].len() / samples;
    let criticals: Vec<u64> = (0..samples)
        .map(|it| {
            (it * passes..(it + 1) * passes)
                .map(|e| nanos.iter().map(|s| s[e]).max().unwrap_or(0))
                .sum()
        })
        .collect();
    (best(walls), best(criticals))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (ring_nv, ring_m, trials, zipf_nv, zipf_m, samples) = if smoke {
        (400usize, 6_000usize, 800usize, 300usize, 4_000usize, 3usize)
    } else {
        (1_000, 60_000, 6_000, 1_500, 30_000, 9)
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let capacity = sgs_stream::broadcast::DEFAULT_RING_CAPACITY;
    let ring_block = sgs_stream::broadcast::DEFAULT_RING_BLOCK;
    println!(
        "parallel bench: ring gnm({ring_nv}, {ring_m}), workers {trials} trials, \
         placement zipf_hub({zipf_nv}, {zipf_m}), host cores {cores}"
    );

    // ── ring: lock-free seqlock vs mutex/condvar, cooperative ────────
    let g = gen::gnm(ring_nv, ring_m, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let ring_feed = ShardedFeed::partition(&stream, 1);
    assert_eq!(
        lockfree_counters(&ring_feed, 2, capacity, ring_block),
        mutex_counters(&ring_feed, 2, capacity, ring_block),
        "ring implementations disagree on consumer state"
    );
    let mut ring_rows = Vec::new();
    for &n in &[1usize, 2, 4] {
        let mutex_ns = time(samples, || {
            mutex_counters(&ring_feed, n, capacity, ring_block)
        });
        let lockfree_ns = time(samples, || {
            lockfree_counters(&ring_feed, n, capacity, ring_block)
        });
        println!(
            "ring      x{n}: mutex {:>10}  lock-free {:>10}  ({:.2}x)",
            human(mutex_ns),
            human(lockfree_ns),
            mutex_ns as f64 / lockfree_ns as f64
        );
        ring_rows.push((n, mutex_ns, lockfree_ns));
    }

    // ── workers: spawn-per-pass vs persistent pool ───────────────────
    let shards = 4usize;
    let g2 = gen::gnm(800, 12_000, 7);
    let stream2 = InsertionStream::from_graph(&g2, 8);
    let feed2 = ShardedFeed::partition(&stream2, shards);
    let batches = capture_batches(trials, &stream2, 7, 5);
    {
        // Equivalence guard: both scheduled paths reproduce the
        // single-stream answers bit for bit.
        let mut arena = RouterArena::new();
        let mut rt = ShardRuntime::new(shards, ExecPolicy::threaded());
        for (batch, seed) in &batches {
            let (want, _) = answer_insertion_batch(batch, &stream2, *seed);
            let (a, _) = answer_insertion_batch_broadcast_with_opts(
                batch,
                &feed2,
                *seed,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::with_policy(ExecPolicy::threaded()),
                &mut [],
            );
            let (b, _) = rt.insertion_pass(
                batch,
                &feed2,
                *seed,
                &mut arena,
                PassOpts::default(),
                BroadcastOpts::with_policy(ExecPolicy::threaded()),
                &mut [],
            );
            assert_eq!(a, want, "spawn-per-pass diverged from single stream");
            assert_eq!(b, want, "persistent runtime diverged from single stream");
        }
        println!("equivalence check: both worker schedules identical to single stream ✓");
    }
    let threaded = BroadcastOpts::with_policy(ExecPolicy::threaded());
    let spawn_ns = run_spawn_per_pass(&batches, &feed2, samples, threaded);
    let persistent_ns = run_persistent(&batches, &feed2, samples, threaded);
    let wall_auto_ns = run_spawn_per_pass(
        &batches,
        &feed2,
        samples,
        BroadcastOpts::with_policy(ExecPolicy::auto()),
    );
    println!(
        "workers /{shards}: spawn-per-pass {:>10}  persistent {:>10}  ({:.2}x)  wall/auto {:>10}",
        human(spawn_ns),
        human(persistent_ns),
        spawn_ns as f64 / persistent_ns as f64,
        human(wall_auto_ns),
    );

    // ── placement: uniform hash vs greedy hot-vertex rebalance ───────
    let hub = gen::zipf_hub(zipf_nv, zipf_m, 1.1, 31);
    let hub_stream = InsertionStream::from_graph(&hub, 32);
    let uniform = ShardedFeed::partition(&hub_stream, shards);
    let balanced = ShardedFeed::partition_with_map(
        &hub_stream,
        ShardMap::balanced(shards, &uniform.vertex_delivery_counts(), 16),
    );
    let hottest = |f: &ShardedFeed| (0..shards).map(|i| f.shard(i).len()).max().unwrap();
    let hub_batches = capture_batches(trials.min(3_000), &hub_stream, 17, 15);
    {
        let mut ua = RouterArena::new();
        let mut ba = RouterArena::new();
        for (batch, seed) in &hub_batches {
            let (a, _) = answer_insertion_batch_sharded_with_exec(
                batch,
                &uniform,
                *seed,
                &mut ua,
                PassOpts::default(),
                ExecPolicy::serial(),
            );
            let (b, _) = answer_insertion_batch_sharded_with_exec(
                batch,
                &balanced,
                *seed,
                &mut ba,
                PassOpts::default(),
                ExecPolicy::serial(),
            );
            assert_eq!(a, b, "placement changed an answer");
        }
        println!("equivalence check: balanced placement identical to uniform ✓");
    }
    let (uni_wall, uni_crit) = run_serial_critical(&hub_batches, &uniform, samples);
    let (bal_wall, bal_crit) = run_serial_critical(&hub_batches, &balanced, samples);
    println!(
        "placement/{shards}: uniform critical {:>10} (hottest {} upd)  balanced critical {:>10} (hottest {} upd)  ({:.2}x)",
        human(uni_crit),
        hottest(&uniform),
        human(bal_crit),
        hottest(&balanced),
        uni_crit as f64 / bal_crit as f64,
    );

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut ring_body = String::new();
        for (n, mutex_ns, lockfree_ns) in &ring_rows {
            ring_body.push_str(&format!(
                "    {{\"consumers\": {n}, \"mutex_ring_ns\": {mutex_ns}, \"lockfree_ring_ns\": {lockfree_ns}, \"speedup_lockfree_vs_mutex\": {:.2}}},\n",
                *mutex_ns as f64 / *lockfree_ns as f64,
            ));
        }
        ring_body.pop();
        ring_body.pop();
        let json = format!(
            "{{\n  \"description\": \"PR-7 parallel runtime: (ring) ingest-bound counter fan-out through the lock-free seqlock Broadcast ring vs the retired MutexBroadcast reference ring, cooperative schedule; (workers) captured multi-round relaxed-f3 estimator batches through per-pass scoped threads vs one persistent ShardRuntime pool, ExecPolicy::threaded, plus wall_auto = the default policy on this host (the pre-PR acceptance guard); (placement) the same workload on a zipf hub stream, serial schedule, uniform hash vs ShardMap::balanced — critical_path_ns = sum over passes of the slowest shard's isolated feed time, hottest_shard_updates = delivered updates on the most loaded shard. All three groups assert byte-identical answers in-bench. Regenerate: SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench parallel\",\n  \"workload\": \"ring gnm({ring_nv}, {ring_m}) x {updates} updates, ring capacity {capacity} block {ring_block}; workers triangle Relaxed-f3 {trials} trials gnm(800, 12000) {shards} shards; placement zipf_hub({zipf_nv}, {zipf_m}, 1.1) {shards} shards\",\n  \"host_cores\": {cores},\n  \"samples\": {samples}, \"statistic\": \"min over samples (additive scheduler noise)\",\n  \"ring_fanout\": [\n{ring_body}\n  ],\n  \"workers\": {{\"shards\": {shards}, \"spawn_per_pass_ns\": {spawn_ns}, \"persistent_ns\": {persistent_ns}, \"speedup_persistent_vs_spawn\": {spawn_speedup:.2}, \"wall_auto_ns\": {wall_auto_ns}}},\n  \"placement\": {{\"shards\": {shards}, \"uniform_wall_ns\": {uni_wall}, \"uniform_critical_ns\": {uni_crit}, \"uniform_hottest_shard_updates\": {uni_hot}, \"balanced_wall_ns\": {bal_wall}, \"balanced_critical_ns\": {bal_crit}, \"balanced_hottest_shard_updates\": {bal_hot}, \"speedup_critical_balanced_vs_uniform\": {crit_speedup:.2}}}\n}}\n",
            ring_nv = ring_nv,
            ring_m = ring_m,
            updates = ring_feed.stream_len(),
            capacity = capacity,
            ring_block = ring_block,
            trials = trials,
            shards = shards,
            zipf_nv = zipf_nv,
            zipf_m = zipf_m,
            cores = cores,
            samples = samples,
            spawn_ns = spawn_ns,
            persistent_ns = persistent_ns,
            spawn_speedup = spawn_ns as f64 / persistent_ns as f64,
            wall_auto_ns = wall_auto_ns,
            uni_wall = uni_wall,
            uni_crit = uni_crit,
            uni_hot = hottest(&uniform),
            bal_wall = bal_wall,
            bal_crit = bal_crit,
            bal_hot = hottest(&balanced),
            crit_speedup = uni_crit as f64 / bal_crit as f64,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
