//! Multi-query multiplexing bench: ONE shared pass per round serving N
//! concurrent estimates vs N independent estimator runs.
//!
//! The serving-side question: N `#H` queries (mixed patterns, trial
//! counts, seeds, sampler and reservoir modes) arrive together. Solo
//! they cost `3·N` passes — every FGP sampler is 3-round — each pass
//! walking the whole stream through its own router. Through
//! `sgs_query::QuerySet` they cost exactly **3 shared passes** total:
//! one merged router per round fans each delivery out to every query's
//! sampler banks, so the per-update feed cost is paid once per round,
//! not once per query per round.
//!
//! Measured at N = 10 / 100 / 1000 concurrent queries, single shard,
//! serial policy on both sides (pure pass-cost comparison — shard
//! threading multiplies both sides alike). The headline number is
//! aggregate answers/sec. Every multiplexed estimate is asserted
//! **byte-identical** to its solo run in-bench before any timing.
//!
//! Run with `cargo bench -p sgs-bench --bench multiplex` (add `smoke`
//! for CI size); `SGS_BENCH_JSON=<path>` writes the record committed as
//! `BENCH_multiplex.json`.

use sgs_core::fgp::{
    estimate_insertion_on_feed_with_exec, estimate_multi_insertion, MultiQuerySpec,
};
use sgs_core::{CountEstimate, SamplerMode};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::PassOpts;
use sgs_query::{ExecPolicy, ReservoirMode, RouterArena};
use sgs_stream::{InsertionStream, ShardedFeed};
use std::hint::black_box;
use std::time::Instant;

fn best(ns: Vec<u64>) -> u64 {
    ns.into_iter().min().unwrap_or(0)
}

fn human(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> u64 {
    // Warm-up.
    black_box(f());
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    best(ns)
}

/// A mixed admission batch of `n` queries: alternating triangle/5-cycle
/// patterns, indexed/relaxed samplers, offer/skip reservoirs, varied
/// trial counts, distinct seeds — the traffic shape the QuerySet exists
/// to serve.
fn mixed_specs(n: usize, trials: usize) -> Vec<MultiQuerySpec> {
    (0..n)
        .map(|i| {
            let (pattern, sampler) = if i % 2 == 0 {
                (Pattern::triangle(), SamplerMode::Indexed)
            } else {
                (Pattern::cycle(5), SamplerMode::Relaxed)
            };
            MultiQuerySpec {
                pattern,
                trials: trials + (i % 4) * (trials / 4).max(1),
                seed: 1_000 + i as u64,
                sampler,
                reservoir: if i % 4 == 3 {
                    ReservoirMode::Skip
                } else {
                    ReservoirMode::Offer
                },
            }
        })
        .collect()
}

/// N independent estimator runs — the pre-multiplexer serving cost.
fn solo_estimates(
    specs: &[MultiQuerySpec],
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    block: usize,
) -> Vec<CountEstimate> {
    specs
        .iter()
        .map(|spec| {
            estimate_insertion_on_feed_with_exec(
                &spec.pattern,
                feed,
                spec.trials,
                spec.seed,
                arena,
                PassOpts::with_block(block).reservoir(spec.reservoir),
                spec.sampler,
                ExecPolicy::serial(),
            )
            .unwrap()
        })
        .collect()
}

struct Row {
    queries: usize,
    solo_ns: u64,
    mux_ns: u64,
    rounds: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (n_v, m, trials, block) = if smoke {
        (120, 900, 4, 128)
    } else {
        (400, 6_000, 16, 128)
    };
    let counts = [10usize, 100, 1_000];
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let g = gen::gnm(n_v, m, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let feed = ShardedFeed::partition(&stream, 1);
    println!(
        "multiplex bench: gnm({n_v}, {m}), {} updates, base trials {trials}, block {block}, host cores {cores}",
        feed.stream_len()
    );

    let mut rows = Vec::new();
    for &n in &counts {
        let samples = if smoke {
            1
        } else {
            match n {
                10 => 7,
                100 => 5,
                _ => 3,
            }
        };
        let specs = mixed_specs(n, trials);

        // Byte-identity guard BEFORE timing: every multiplexed estimate
        // equals its solo run bit for bit.
        let mut mux_arena = RouterArena::new();
        let (mux_ests, admission) = estimate_multi_insertion(
            &specs,
            &feed,
            &mut mux_arena,
            PassOpts::with_block(block),
            ExecPolicy::serial(),
        )
        .unwrap();
        let mut solo_arena = RouterArena::new();
        let solos = solo_estimates(&specs, &feed, &mut solo_arena, block);
        for (j, (a, b)) in mux_ests.iter().zip(&solos).enumerate() {
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "estimate mismatch, query {j} of {n}"
            );
            assert_eq!(a.hits, b.hits, "hits mismatch, query {j} of {n}");
            assert_eq!(a.trials, b.trials, "trials mismatch, query {j} of {n}");
        }
        let rounds = admission.rounds.len();
        println!(
            "x{n}: byte-identity vs {n} solo runs ✓  ({rounds} shared passes vs {})",
            3 * n
        );

        let solo_ns = time(samples, || {
            solo_estimates(&specs, &feed, &mut solo_arena, block)
        });
        let mux_ns = time(samples, || {
            estimate_multi_insertion(
                &specs,
                &feed,
                &mut mux_arena,
                PassOpts::with_block(block),
                ExecPolicy::serial(),
            )
            .unwrap()
        });
        let speedup = solo_ns as f64 / mux_ns as f64;
        let aps = n as f64 / (mux_ns as f64 / 1e9);
        println!(
            "x{n:<5}: solo {:>10}  mux {:>10}  ({speedup:.2}x)  {aps:.0} answers/sec",
            human(solo_ns),
            human(mux_ns),
        );
        rows.push(Row {
            queries: n,
            solo_ns,
            mux_ns,
            rounds,
        });
    }

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut body = String::new();
        for r in &rows {
            body.push_str(&format!(
                "    {{\"queries\": {}, \"solo_total_ns\": {}, \"mux_total_ns\": {}, \"speedup_mux_vs_solo\": {:.2}, \"mux_answers_per_sec\": {:.0}, \"shared_passes\": {}, \"solo_passes\": {}}},\n",
                r.queries,
                r.solo_ns,
                r.mux_ns,
                r.solo_ns as f64 / r.mux_ns as f64,
                r.queries as f64 / (r.mux_ns as f64 / 1e9),
                r.rounds,
                3 * r.queries,
            ));
        }
        body.pop();
        body.pop();
        let json = format!(
            "{{\n  \"description\": \"Multi-query multiplexing (sgs_query::QuerySet: one shared QueryRouter pass per round fanning deliveries out to every query's sampler banks) vs N independent estimator runs, byte-identical per-query estimates asserted in-bench before timing. Mixed traffic: alternating triangle/5-cycle patterns, indexed/relaxed samplers, offer/skip reservoirs, varied trial counts, distinct seeds. Single shard, serial policy on both sides (pure pass-cost comparison). Regenerate: SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench multiplex\",\n  \"workload\": \"gnm({n_v}, {m}), {updates} updates, base trials {trials} (varied per query), feed block {block}\",\n  \"host_cores\": {cores},\n  \"statistic\": \"min over samples (7/5/3 at N=10/100/1000)\",\n  \"multiplex\": [\n{body}\n  ]\n}}\n",
            n_v = n_v,
            m = m,
            updates = feed.stream_len(),
            trials = trials,
            block = block,
            cores = cores,
            body = body,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
