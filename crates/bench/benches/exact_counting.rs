//! Microbenchmarks for the exact (ground-truth) counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_graph::{exact, gen, Pattern};
use std::hint::black_box;

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_triangles");
    for &n in &[200usize, 800] {
        let g = gen::gnm(n, 8 * n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(exact::triangles::count_triangles(g)));
        });
    }
    group.finish();
}

fn bench_cliques(c: &mut Criterion) {
    let g = gen::barabasi_albert(500, 6, 7);
    let mut group = c.benchmark_group("exact_cliques");
    for &r in &[3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(exact::cliques::count_cliques(&g, r)));
        });
    }
    group.finish();
}

fn bench_generic_pattern(c: &mut Criterion) {
    let g = gen::gnm(80, 400, 9);
    let mut group = c.benchmark_group("exact_generic");
    for p in [Pattern::cycle(4), Pattern::path(3), Pattern::star(3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| {
                b.iter(|| black_box(exact::generic::count_pattern(&g, p)));
            },
        );
    }
    group.finish();
}

fn bench_degeneracy(c: &mut Criterion) {
    let g = gen::gnm(2000, 16_000, 11);
    c.bench_function("core_decomposition_n2000_m16000", |b| {
        b.iter(|| black_box(sgs_graph::degeneracy::CoreDecomposition::compute(&g).degeneracy));
    });
}

criterion_group!(
    benches,
    bench_triangles,
    bench_cliques,
    bench_generic_pattern,
    bench_degeneracy
);
criterion_main!(benches);
