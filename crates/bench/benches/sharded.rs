//! Sharded-pipeline scaling bench: 1/2/4/8 feed shards vs the PR-1
//! single-router baseline on the relaxed-f3 insertion workload.
//!
//! Workload: the three real captured rounds of a triangle estimator with
//! relaxed `f3` (thousands of pending `RandomNeighbor` reservoirs — the
//! feed-path-dominated regime the router and the sharded pipeline both
//! target), re-answered per pass exactly like `benches/executor.rs`'s
//! `insertion_pass_relaxed` group.
//!
//! Three numbers per shard count:
//!
//! * **wall/seq** — wall clock with shard workers forced sequential
//!   (`ExecPolicy::serial()`): the total CPU work of the sharded pass.
//!   Expect ≈ baseline at 1 shard and a modest overhead factor above it
//!   as shards climb (dual endpoint delivery).
//! * **critical** — Σ over passes of the *slowest shard's* measured feed
//!   time: the pass latency of a deployment running one shard per core.
//!   This is the headline scaling number, reproducible on any host
//!   because each shard is timed in isolation (no core contention).
//! * **wall/auto** — wall clock with the default execution policy
//!   (scoped threads when the host has >1 core). On a multi-core host
//!   this tracks `critical` plus thread overhead; on a single-core CI
//!   box it degrades to `wall/seq` — which is why `critical` is recorded
//!   separately.
//!
//! Run `cargo bench -p sgs-bench --bench sharded` (add `smoke` for the
//! CI-sized configuration). Set `SGS_BENCH_JSON=<path>` to write the
//! machine-readable record committed as `BENCH_sharded.json`.

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::answer_insertion_batch;
use sgs_query::sharded::{
    answer_insertion_batch_sharded, answer_insertion_batch_sharded_with_exec,
};
use sgs_query::{ExecPolicy, Parallel, PassOpts, Query, RoundAdaptive, RouterArena};
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, InsertionStream, ShardedFeed};
use std::hint::black_box;
use std::time::Instant;

/// Capture the real per-round batches of one estimator run by driving
/// the protocol with the production executor.
fn capture_batches(
    trials: usize,
    stream: &InsertionStream,
    bank_seed: u64,
    exec_seed: u64,
) -> Vec<(Vec<Query>, u64)> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let mut par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Relaxed,
                    split_seed(bank_seed, i as u64),
                )
            })
            .collect::<Vec<_>>(),
    );
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(exec_seed, pass);
        let (a, _) = answer_insertion_batch(&batch, stream, pass_seed);
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

/// Noise-robust sample statistic: minimum. This box's scheduler noise is
/// strictly additive (±30% between runs — see the verify notes), so the
/// fastest sample is the closest observation of the true cost; applied
/// to baseline and sharded runs alike.
fn best(ns: Vec<u64>) -> u64 {
    ns.into_iter().min().unwrap_or(0)
}

fn human(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

struct ShardResult {
    shards: usize,
    wall_seq_ns: u64,
    critical_ns: u64,
    wall_auto_ns: u64,
    /// Mean total feed nanos per shard over the timed iterations (from
    /// `RouterArena::shard_pass_nanos`): the per-shard load histogram —
    /// groundwork for shard-aware trial placement.
    shard_load_ns: Vec<u64>,
}

/// Time `iters` full 3-round answer sets through the sharded path,
/// returning (best wall ns, best critical-path ns over timed iters, and
/// the mean per-shard total feed nanos — the shard load histogram).
fn run_sharded(
    batches: &[(Vec<Query>, u64)],
    feed: &ShardedFeed,
    samples: usize,
    policy: ExecPolicy,
) -> (u64, u64, Vec<u64>) {
    let mut arena = RouterArena::new();
    let opts = PassOpts::default();
    // Warm-up: allocator growth and page faults land here.
    for _ in 0..2 {
        for (batch, seed) in batches {
            black_box(answer_insertion_batch_sharded_with_exec(
                batch, feed, *seed, &mut arena, opts, policy,
            ));
        }
    }
    let _ = arena.take_shard_pass_nanos();
    let mut walls = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for (batch, seed) in batches {
            black_box(answer_insertion_batch_sharded_with_exec(
                batch, feed, *seed, &mut arena, opts, policy,
            ));
        }
        walls.push(t0.elapsed().as_nanos() as u64);
    }
    // Telemetry: per shard, one entry per pass per timed iteration, in
    // lockstep across shards. Critical path of one iteration = sum over
    // its passes of the slowest shard; best over iterations (a mean or
    // median lets preempted pass samples poison the figure).
    let nanos = arena.take_shard_pass_nanos();
    let passes = nanos[0].len() / samples;
    debug_assert!(nanos.iter().all(|s| s.len() == passes * samples));
    let criticals: Vec<u64> = (0..samples)
        .map(|it| {
            (it * passes..(it + 1) * passes)
                .map(|e| nanos.iter().map(|s| s[e]).max().unwrap_or(0))
                .sum()
        })
        .collect();
    let shard_load_ns: Vec<u64> = nanos
        .iter()
        .map(|s| s.iter().sum::<u64>() / samples as u64)
        .collect();
    (best(walls), best(criticals), shard_load_ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (trials, samples, shard_counts): (usize, usize, &[usize]) = if smoke {
        (1_000, 5, &[1, 4])
    } else {
        (8_000, 15, &[1, 2, 4, 8])
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let g = gen::gnm(800, 12_000, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    println!(
        "sharded bench: relaxed-f3 triangle bank, {} trials, gnm(800, 12000), {} passes, host cores: {cores}",
        trials, 3
    );
    let batches = capture_batches(trials, &stream, 7, 5);
    let updates_per_set = (batches.len() * stream.len()) as u64;

    // PR-1 baseline: the single-router per-batch seam.
    let mut base_samples = Vec::with_capacity(samples);
    for _ in 0..2 {
        for (batch, seed) in &batches {
            black_box(answer_insertion_batch(batch, &stream, *seed));
        }
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        for (batch, seed) in &batches {
            black_box(answer_insertion_batch(batch, &stream, *seed));
        }
        base_samples.push(t0.elapsed().as_nanos() as u64);
    }
    let baseline_ns = best(base_samples);
    println!(
        "{:<28} {:>12}   ({:.3} Mupd/s)",
        "baseline (PR-1 router)",
        human(baseline_ns),
        updates_per_set as f64 * 1e3 / baseline_ns as f64
    );

    let mut results = Vec::new();
    for &shards in shard_counts {
        let feed = ShardedFeed::partition(&stream, shards);
        let (wall_seq_ns, critical_ns, shard_load_ns) =
            run_sharded(&batches, &feed, samples, ExecPolicy::serial());
        let (wall_auto_ns, _, _) = run_sharded(&batches, &feed, samples, ExecPolicy::auto());
        println!(
            "{:<28} wall/seq {:>10}  critical {:>10} ({:.2}x)  wall/auto {:>10} ({:.2}x)",
            format!("sharded/{shards}"),
            human(wall_seq_ns),
            human(critical_ns),
            baseline_ns as f64 / critical_ns as f64,
            human(wall_auto_ns),
            baseline_ns as f64 / wall_auto_ns as f64,
        );
        results.push(ShardResult {
            shards,
            wall_seq_ns,
            critical_ns,
            wall_auto_ns,
            shard_load_ns,
        });
    }

    // Sanity: the sharded path must still produce the exact baseline
    // answers (the equivalence suite proves this at length; keep the
    // bench honest about what it measured).
    {
        let feed = ShardedFeed::partition(&stream, *shard_counts.last().unwrap());
        let mut arena = RouterArena::new();
        for (batch, seed) in &batches {
            let (a, _) = answer_insertion_batch(batch, &stream, *seed);
            let (b, _) = answer_insertion_batch_sharded(batch, &feed, *seed, &mut arena);
            assert_eq!(a, b, "sharded answers diverged from baseline");
        }
        println!("equivalence check: sharded answers identical to baseline ✓");
    }

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut rows = String::new();
        for r in &results {
            rows.push_str(&format!(
                "    {{\"shards\": {}, \"wall_seq_ns\": {}, \"critical_path_ns\": {}, \"wall_auto_ns\": {}, \"speedup_critical_vs_baseline\": {:.2}, \"speedup_wall_auto_vs_baseline\": {:.2}, \"shard_load_ns\": {:?}}},\n",
                r.shards,
                r.wall_seq_ns,
                r.critical_ns,
                r.wall_auto_ns,
                baseline_ns as f64 / r.critical_ns as f64,
                baseline_ns as f64 / r.wall_auto_ns as f64,
                r.shard_load_ns,
            ));
        }
        rows.pop();
        rows.pop(); // trailing ",\n"
        let json = format!(
            "{{\n  \"description\": \"Sharded stream pipeline (per-shard QueryRouters over a hash-partitioned ShardedFeed) vs the PR-1 single-router baseline (answer_insertion_batch), relaxed-f3 insertion workload. critical_path_ns = sum over passes of the slowest shard's isolated feed time = pass latency of a one-core-per-shard deployment; wall_auto_ns = actual wall clock under the default execution policy on this host. shard_load_ns = mean total feed nanos per shard over the timed iterations (RouterArena::shard_pass_nanos) - the per-shard load histogram behind the shard-aware-placement roadmap item. Regenerate: SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench sharded\",\n  \"workload\": \"triangle bank, Relaxed f3, {trials} trials, gnm(800, 12000), 3 captured rounds, {updates} stream updates per answer set\",\n  \"host_cores\": {cores},\n  \"samples\": {samples}, \"statistic\": \"min over samples (additive scheduler noise on this box)\",\n  \"baseline_pr1_router_ns\": {baseline_ns},\n  \"sharded\": [\n{rows}\n  ]\n}}\n",
            trials = trials,
            updates = updates_per_set,
            cores = cores,
            samples = samples,
            baseline_ns = baseline_ns,
            rows = rows,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
