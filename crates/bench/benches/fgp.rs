//! Benchmarks for the FGP pipeline: edges/second through the 3-pass
//! estimator at varying trial counts, per pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgs_core::fgp::estimate_insertion;
use sgs_graph::{gen, Pattern, StaticGraph};
use sgs_stream::{EdgeStream, InsertionStream};
use std::hint::black_box;

fn bench_estimator_trials(c: &mut Criterion) {
    let g = gen::gnm(300, 2400, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let mut group = c.benchmark_group("fgp_triangle_trials");
    group.sample_size(10);
    for &k in &[1_000usize, 10_000, 50_000] {
        // 3 passes over the stream per run.
        group.throughput(Throughput::Elements(3 * stream.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(estimate_insertion(&Pattern::triangle(), &stream, k, 5).unwrap()));
        });
    }
    group.finish();
}

fn bench_estimator_patterns(c: &mut Criterion) {
    let g = gen::gnm(200, 1200, 7);
    let stream = InsertionStream::from_graph(&g, 8);
    let mut group = c.benchmark_group("fgp_patterns_10k_trials");
    group.sample_size(10);
    for p in [
        Pattern::triangle(),
        Pattern::cycle(5),
        Pattern::star(3),
        Pattern::clique(4),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| {
                b.iter(|| black_box(estimate_insertion(p, &stream, 10_000, 9).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_turnstile_pass_cost(c: &mut Criterion) {
    use sgs_core::fgp::estimate_turnstile;
    use sgs_stream::TurnstileStream;
    let g = gen::gnm(150, 900, 11);
    let stream = TurnstileStream::from_graph_with_churn(&g, 1.0, 12);
    let mut group = c.benchmark_group("fgp_turnstile");
    group.sample_size(10);
    for &k in &[200usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(estimate_turnstile(&Pattern::triangle(), &stream, k, 13).unwrap()));
        });
    }
    group.finish();
    let _ = g.num_edges();
}

criterion_group!(
    benches,
    bench_estimator_trials,
    bench_estimator_patterns,
    bench_turnstile_pass_cost
);
criterion_main!(benches);
