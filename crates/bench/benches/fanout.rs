//! Broadcast fan-out bench: ONE ingest feeding N consumers vs N private
//! replays of the same stream.
//!
//! The pre-broadcast serving reality: every pass consumer (baseline,
//! exact oracle, raw counter, …) replays the stream privately through
//! `EdgeStream::replay` — N consumers, N full feed passes, each paying
//! the per-update dynamic-dispatch callback and its own walk over the
//! update buffer. The broadcast ring pays the ingest once: one producer
//! chunks the routed buffer into shared blocks and every consumer walks
//! the blocks as tight slice loops through its own cursor.
//!
//! Two consumer weights are measured at N = 1 / 2 / 4:
//!
//! * **counter** — a cheap ingest-bound consumer (key-sum + tally):
//!   exposes pure feed cost, the number the acceptance criterion cares
//!   about ("one broadcast ingest beats N ≥ 2 private replays on total
//!   feed cost");
//! * **triest** — the TRIÈST baseline (hash-indexed reservoir): a
//!   realistic heavyweight consumer, where per-consumer work dilutes
//!   the transport saving.
//!
//! Plus one end-to-end row: the `estimate_insertion_broadcast` bundle
//! (estimator + TRIÈST + exact CSR oracle + raw counter from one
//! ingest) vs the same four answers computed the private way (estimator
//! run + 3 private replays).
//!
//! The broadcast side runs the deterministic cooperative schedule (the
//! single-core execution policy); on a multi-core host the scoped-thread
//! schedule overlaps consumers on top of this saving. Run with
//! `cargo bench -p sgs-bench --bench fanout` (add `smoke` for CI size);
//! `SGS_BENCH_JSON=<path>` writes the record committed as
//! `BENCH_fanout.json`.

use sgs_core::baselines::exact_stream::count_exact;
use sgs_core::baselines::triest::{estimate_triest, TriestStream};
use sgs_core::fgp::{
    estimate_insertion_broadcast_with_opts, estimate_insertion_on_feed, triest_seed, ConsumerSet,
};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::PassOpts;
use sgs_query::RouterArena;
use sgs_stream::broadcast::{Broadcast, RoutedProducer, TryNext};
use sgs_stream::{EdgeStream, InsertionStream, ShardedFeed};
use std::hint::black_box;
use std::time::Instant;

fn best(ns: Vec<u64>) -> u64 {
    ns.into_iter().min().unwrap_or(0)
}

fn human(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

/// Cheap consumer state: tally + key checksum (ingest-bound).
#[derive(Default, Clone, Copy, PartialEq, Debug)]
struct Counter {
    updates: u64,
    key_sum: u64,
}

impl Counter {
    #[inline]
    fn absorb(&mut self, key: u64) {
        self.updates += 1;
        self.key_sum = self.key_sum.wrapping_add(key);
    }
}

/// N private replays, each through the dyn-callback replay path.
fn private_counters(feed: &ShardedFeed, n: usize) -> Vec<Counter> {
    (0..n)
        .map(|_| {
            let mut c = Counter::default();
            feed.replay(&mut |u| c.absorb(u.edge.key()));
            c
        })
        .collect()
}

/// One broadcast ingest, N counter consumers, cooperative schedule.
fn broadcast_counters(feed: &ShardedFeed, n: usize, ring_block: usize) -> Vec<Counter> {
    let ring = Broadcast::new(8);
    let mut consumers: Vec<_> = (0..n)
        .map(|_| (ring.subscribe(), Counter::default(), false))
        .collect();
    let mut producer = RoutedProducer::new(feed, ring_block);
    loop {
        let done = producer.pump(&ring);
        let mut all = true;
        for (c, state, ended) in consumers.iter_mut() {
            while !*ended {
                match c.try_next() {
                    TryNext::Block(b) => {
                        for r in b.iter() {
                            state.absorb(r.update.edge.key());
                        }
                    }
                    TryNext::Pending => break,
                    TryNext::Ended => *ended = true,
                }
            }
            all &= *ended;
        }
        if done && all {
            break;
        }
    }
    consumers.into_iter().map(|(_, s, _)| s).collect()
}

/// N private TRIÈST replays.
fn private_triests(feed: &ShardedFeed, n: usize, cap: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| estimate_triest(feed, cap, seed + i as u64).estimate)
        .collect()
}

/// One broadcast ingest, N TRIÈST consumers, cooperative schedule.
fn broadcast_triests(
    feed: &ShardedFeed,
    n: usize,
    cap: usize,
    seed: u64,
    ring_block: usize,
) -> Vec<f64> {
    let ring = Broadcast::new(8);
    let mut consumers: Vec<_> = (0..n)
        .map(|i| {
            (
                ring.subscribe(),
                Some(TriestStream::new(cap, seed + i as u64)),
                false,
            )
        })
        .collect();
    let mut producer = RoutedProducer::new(feed, ring_block);
    loop {
        let done = producer.pump(&ring);
        let mut all = true;
        for (c, ts, ended) in consumers.iter_mut() {
            while !*ended {
                match c.try_next() {
                    TryNext::Block(b) => {
                        let t = ts.as_mut().unwrap();
                        for r in b.iter() {
                            t.push(r.update.edge);
                        }
                    }
                    TryNext::Pending => break,
                    TryNext::Ended => *ended = true,
                }
            }
            all &= *ended;
        }
        if done && all {
            break;
        }
    }
    consumers
        .into_iter()
        .map(|(_, ts, _)| ts.unwrap().finish().estimate)
        .collect()
}

fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> u64 {
    // Warm-up.
    black_box(f());
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    best(ns)
}

struct Row {
    group: &'static str,
    consumers: usize,
    private_ns: u64,
    broadcast_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (n_v, m, samples, trials) = if smoke {
        (400, 6_000, 5, 500)
    } else {
        (1_000, 60_000, 11, 4_000)
    };
    let consumer_counts = [1usize, 2, 4];
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let g = gen::gnm(n_v, m, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let feed = ShardedFeed::partition(&stream, 1);
    let ring_block = sgs_stream::broadcast::DEFAULT_RING_BLOCK;
    println!(
        "fanout bench: gnm({n_v}, {m}), {} updates, ring block {ring_block}, host cores {cores}",
        feed.stream_len()
    );

    // Equivalence guards: broadcast consumers compute the exact same
    // answers as the private replays.
    assert_eq!(
        private_counters(&feed, 2),
        broadcast_counters(&feed, 2, ring_block)
    );
    assert_eq!(
        private_triests(&feed, 2, 256, 77),
        broadcast_triests(&feed, 2, 256, 77, ring_block)
    );
    println!("equivalence check: broadcast consumers identical to private replays ✓");

    let mut rows = Vec::new();
    for &n in &consumer_counts {
        let private_ns = time(samples, || private_counters(&feed, n));
        let broadcast_ns = time(samples, || broadcast_counters(&feed, n, ring_block));
        println!(
            "counter  x{n}: private {:>10}  broadcast {:>10}  ({:.2}x)",
            human(private_ns),
            human(broadcast_ns),
            private_ns as f64 / broadcast_ns as f64
        );
        rows.push(Row {
            group: "counter",
            consumers: n,
            private_ns,
            broadcast_ns,
        });
    }
    for &n in &consumer_counts {
        let private_ns = time(samples, || private_triests(&feed, n, 256, 77));
        let broadcast_ns = time(samples, || broadcast_triests(&feed, n, 256, 77, ring_block));
        println!(
            "triest   x{n}: private {:>10}  broadcast {:>10}  ({:.2}x)",
            human(private_ns),
            human(broadcast_ns),
            private_ns as f64 / broadcast_ns as f64
        );
        rows.push(Row {
            group: "triest",
            consumers: n,
            private_ns,
            broadcast_ns,
        });
    }

    // End-to-end bundle: estimator + TRIÈST + exact + raw from one
    // ingest vs the private pipeline (estimator run, then 3 replays).
    let pattern = Pattern::triangle();
    let bundle_private_ns = time(samples.min(7), || {
        let mut arena = RouterArena::new();
        let est = estimate_insertion_on_feed(&pattern, &feed, trials, 9, &mut arena).unwrap();
        let t = estimate_triest(&feed, 256, triest_seed(9));
        let x = count_exact(&pattern, &feed);
        let mut raw = 0u64;
        feed.replay(&mut |_| raw += 1);
        (est.hits, t.estimate.to_bits(), x.count, raw)
    });
    let bundle_broadcast_ns = time(samples.min(7), || {
        let mut arena = RouterArena::new();
        let b = estimate_insertion_broadcast_with_opts(
            &pattern,
            &feed,
            trials,
            9,
            &mut arena,
            PassOpts::default(),
            sgs_core::SamplerMode::Indexed,
            ConsumerSet {
                triest_capacity: Some(256),
                exact: true,
                extra_raw: 0,
            },
        )
        .unwrap();
        (
            b.estimate.hits,
            b.triest.unwrap().estimate.to_bits(),
            b.exact.unwrap(),
            b.raw_updates,
        )
    });
    println!(
        "bundle     : private {:>10}  broadcast {:>10}  ({:.2}x)  [estimator+triest+exact+raw]",
        human(bundle_private_ns),
        human(bundle_broadcast_ns),
        bundle_private_ns as f64 / bundle_broadcast_ns as f64
    );
    rows.push(Row {
        group: "bundle",
        consumers: 4,
        private_ns: bundle_private_ns,
        broadcast_ns: bundle_broadcast_ns,
    });

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut body = String::new();
        for r in &rows {
            body.push_str(&format!(
                "    {{\"group\": \"{}\", \"consumers\": {}, \"private_total_ns\": {}, \"broadcast_total_ns\": {}, \"speedup_broadcast_vs_private\": {:.2}}},\n",
                r.group,
                r.consumers,
                r.private_ns,
                r.broadcast_ns,
                r.private_ns as f64 / r.broadcast_ns as f64,
            ));
        }
        body.pop();
        body.pop();
        let json = format!(
            "{{\n  \"description\": \"Broadcast fan-out (one RoutedProducer ingest over a bounded Broadcast ring, cooperative single-core schedule) vs N private EdgeStream::replay passes, identical consumer answers asserted in-bench. groups: counter = ingest-bound tally consumer (the total-feed-cost criterion), triest = heavyweight TRIEST baseline consumer, bundle = estimate_insertion_broadcast (estimator + TRIEST + exact CSR + raw counter from one ingest) vs the private pipeline. Regenerate: SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench fanout\",\n  \"workload\": \"gnm({n_v}, {m}), {updates} updates, ring capacity 8, ring block {ring_block}, triest capacity 256, bundle trials {trials}\",\n  \"host_cores\": {cores},\n  \"samples\": {samples}, \"statistic\": \"min over samples\",\n  \"fanout\": [\n{body}\n  ]\n}}\n",
            n_v = n_v,
            m = m,
            updates = feed.stream_len(),
            ring_block = ring_block,
            trials = trials,
            cores = cores,
            samples = samples,
            body = body,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
