//! Durability bench: what checkpointing costs and what recovery buys.
//!
//! Three numbers per (model, shards) row, on one workload:
//!
//! * **checkpoint overhead** — the full durable run (WAL ingest +
//!   block-boundary snapshots + estimation) vs the plain in-memory
//!   executor producing the identical estimate;
//! * **recovery time** — crash the run at its halfway block, then time
//!   `CheckpointSession::resume` + rerun to completion (WAL decode,
//!   snapshot decode, round-history replay, remaining blocks);
//! * **on-disk footprint** — total WAL bytes and the (largest) snapshot
//!   record, plus how many snapshots the cadence published.
//!
//! Recovered estimates are asserted bit-identical to the plain run
//! in-bench, so the timings can't drift away from correctness. Run with
//! `cargo bench -p sgs-bench --bench persist` (add `smoke` for CI
//! size); `SGS_BENCH_JSON=<path>` writes the record committed as
//! `BENCH_persist.json`.

use sgs_core::fgp::{
    estimate_insertion_checkpointed, estimate_insertion_on_feed_with_opts,
    estimate_turnstile_checkpointed, estimate_turnstile_on_feed_with_block,
};
use sgs_core::{CountEstimate, SamplerMode};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::PassOpts;
use sgs_query::{CheckpointSession, RouterArena};
use sgs_stream::{InsertionStream, ShardedFeed, TurnstileStream};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SNAP_EVERY: u64 = 4;
const SEED: u64 = 9;

fn human(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

fn human_bytes(b: u64) -> String {
    if b < 16 * 1024 {
        format!("{b} B")
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sgs-bench-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// (total WAL bytes, largest snapshot bytes, snapshot count).
fn footprint(dir: &Path) -> (u64, u64, u64) {
    let (mut wal, mut snap_max, mut snaps) = (0u64, 0u64, 0u64);
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        let len = entry.metadata().unwrap().len();
        if name.starts_with("wal-") && name.ends_with(".seg") {
            wal += len;
        } else if name.starts_with("snap-") && name.ends_with(".bin") {
            snap_max = snap_max.max(len);
            snaps += 1;
        }
    }
    (wal, snap_max, snaps)
}

#[derive(Clone, Copy)]
struct Cfg {
    model: &'static str,
    shards: usize,
    trials: usize,
    chunk: usize,
}

fn make_feed(cfg: Cfg, n_v: usize, m: usize) -> ShardedFeed {
    let g = gen::gnm(n_v, m, 3);
    if cfg.model == "turnstile" {
        let s = TurnstileStream::from_graph_with_churn(&g, 0.5, 4);
        ShardedFeed::partition(&s, cfg.shards)
    } else {
        let s = InsertionStream::from_graph(&g, 4);
        ShardedFeed::partition(&s, cfg.shards)
    }
}

fn run_plain(cfg: Cfg, feed: &ShardedFeed) -> CountEstimate {
    let mut arena = RouterArena::new();
    if cfg.model == "turnstile" {
        estimate_turnstile_on_feed_with_block(
            &Pattern::triangle(),
            feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default().block,
        )
    } else {
        estimate_insertion_on_feed_with_opts(
            &Pattern::triangle(),
            feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default(),
            SamplerMode::Indexed,
        )
    }
    .unwrap()
}

fn run_checkpointed(
    cfg: Cfg,
    feed: &ShardedFeed,
    dir: &Path,
    crash_after: Option<u64>,
) -> (Option<CountEstimate>, u64) {
    let mut session = CheckpointSession::create(dir, feed, SNAP_EVERY, cfg.chunk).unwrap();
    if let Some(c) = crash_after {
        session.set_crash_after(c);
    }
    let mut arena = RouterArena::new();
    let est = if cfg.model == "turnstile" {
        estimate_turnstile_checkpointed(
            &Pattern::triangle(),
            feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
    } else {
        estimate_insertion_checkpointed(
            &Pattern::triangle(),
            feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default(),
            SamplerMode::Indexed,
            &mut session,
        )
    }
    .unwrap();
    (est, session.blocks_processed())
}

fn resume_run(cfg: Cfg, dir: &Path) -> CountEstimate {
    let (mut session, feed) = CheckpointSession::resume(dir, SNAP_EVERY).unwrap();
    let mut arena = RouterArena::new();
    let est = if cfg.model == "turnstile" {
        estimate_turnstile_checkpointed(
            &Pattern::triangle(),
            &feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
    } else {
        estimate_insertion_checkpointed(
            &Pattern::triangle(),
            &feed,
            cfg.trials,
            SEED,
            &mut arena,
            PassOpts::default(),
            SamplerMode::Indexed,
            &mut session,
        )
    }
    .unwrap();
    est.expect("recovered run completes")
}

fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm-up
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

struct Row {
    cfg: Cfg,
    plain_ns: u64,
    checkpointed_ns: u64,
    recover_ns: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    snapshots: u64,
    total_blocks: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (n_v, m, samples, ins_trials, tst_trials) = if smoke {
        (100, 800, 3, 400, 200)
    } else {
        (300, 3_000, 7, 3_000, 1_000)
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "persist bench: gnm({n_v}, {m}), snapshot every {SNAP_EVERY} blocks, host cores {cores}"
    );

    let mut rows = Vec::new();
    for model in ["insertion", "turnstile"] {
        for shards in [1usize, 4] {
            let cfg = Cfg {
                model,
                shards,
                trials: if model == "turnstile" {
                    tst_trials
                } else {
                    ins_trials
                },
                chunk: 256,
            };
            let feed = make_feed(cfg, n_v, m);
            let plain = run_plain(cfg, &feed);

            // One probe run: total block count, on-disk footprint, and
            // the bit-identity guard for the uninterrupted durable run.
            let dir = bench_dir(&format!("{model}-{shards}-probe"));
            let (est, total_blocks) = run_checkpointed(cfg, &feed, &dir, None);
            assert_eq!(
                est.unwrap().estimate.to_bits(),
                plain.estimate.to_bits(),
                "checkpointed run must match the plain executor"
            );
            let (wal_bytes, snapshot_bytes, snapshots) = footprint(&dir);
            std::fs::remove_dir_all(&dir).unwrap();

            let plain_ns = time(samples, || run_plain(cfg, &feed));
            let checkpointed_ns = time(samples, || {
                let dir = bench_dir(&format!("{model}-{shards}-full"));
                let r = run_checkpointed(cfg, &feed, &dir, None);
                std::fs::remove_dir_all(&dir).unwrap();
                r.1
            });

            // Recovery: crash at the halfway block, resume to the end.
            // The crashed directory is prepared outside the clock; the
            // timed region is resume + rerun, and the recovered answer
            // is checked against the plain run every sample.
            let crash_at = (total_blocks / 2).max(1);
            let mut recover_ns = u64::MAX;
            for i in 0..=samples {
                let dir = bench_dir(&format!("{model}-{shards}-rec"));
                let (none, _) = run_checkpointed(cfg, &feed, &dir, Some(crash_at));
                assert!(none.is_none());
                let t0 = Instant::now();
                let rec = black_box(resume_run(cfg, &dir));
                let ns = t0.elapsed().as_nanos() as u64;
                if i > 0 {
                    recover_ns = recover_ns.min(ns);
                }
                assert_eq!(rec.estimate.to_bits(), plain.estimate.to_bits());
                std::fs::remove_dir_all(&dir).unwrap();
            }

            println!(
                "{model:<9} x{shards}: plain {:>10}  checkpointed {:>10} ({:.2}x)  \
                 recover-from-half {:>10}  wal {:>9}  snapshot {:>9} (x{snapshots})",
                human(plain_ns),
                human(checkpointed_ns),
                checkpointed_ns as f64 / plain_ns as f64,
                human(recover_ns),
                human_bytes(wal_bytes),
                human_bytes(snapshot_bytes),
            );
            rows.push(Row {
                cfg,
                plain_ns,
                checkpointed_ns,
                recover_ns,
                wal_bytes,
                snapshot_bytes,
                snapshots,
                total_blocks,
            });
        }
    }

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut body = String::new();
        for r in &rows {
            body.push_str(&format!(
                "    {{\"model\": \"{}\", \"shards\": {}, \"trials\": {}, \"plain_ns\": {}, \"checkpointed_ns\": {}, \"overhead_checkpointed_vs_plain\": {:.2}, \"recover_from_half_ns\": {}, \"wal_bytes\": {}, \"snapshot_bytes\": {}, \"snapshots\": {}, \"total_blocks\": {}}},\n",
                r.cfg.model,
                r.cfg.shards,
                r.cfg.trials,
                r.plain_ns,
                r.checkpointed_ns,
                r.checkpointed_ns as f64 / r.plain_ns as f64,
                r.recover_ns,
                r.wal_bytes,
                r.snapshot_bytes,
                r.snapshots,
                r.total_blocks,
            ));
        }
        body.pop();
        body.pop();
        let json = format!(
            "{{\n  \"description\": \"Durability costs: full checkpointed run (WAL ingest + snapshots every {SNAP_EVERY} delivery blocks + estimation) vs the plain in-memory executor, and recovery time (CheckpointSession::resume + rerun) after a crash at the halfway block. Recovered estimates asserted bit-identical to the plain run in-bench. wal_bytes = sealed log of the routed stream; snapshot_bytes = largest published snapshot record. Regenerate: SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench persist\",\n  \"workload\": \"gnm({n_v}, {m}), triangle, chunk 256 updates/block, snapshot every {SNAP_EVERY} blocks, crash at total_blocks/2\",\n  \"host_cores\": {cores},\n  \"samples\": {samples}, \"statistic\": \"min over samples\",\n  \"persist\": [\n{body}\n  ]\n}}\n",
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
