//! Reservoir bench: per-offer scalar oracle vs the skip-ahead SoA bank,
//! at the two layers the rework touched.
//!
//! Three sections:
//!
//! * **Coin throughput** — the raw RNG floor: `gen_range` (the per-offer
//!   acceptance draw), scalar `gen_unit_f64`, and batched
//!   `fill_unit_f64` (the gap-redraw coin), ns per draw.
//! * **Direct bank** — the Theorem-9 `f1` emulator shape: a `k`-lane
//!   [`ReservoirBank`] absorbing `m` offers through `offer_batch`, in
//!   `offer` mode (the scalar per-draw baseline, in-file) and `skip`
//!   mode. Reports pass nanos and **counted** RNG draws per pass
//!   (`rng_draws()`): the acceptance bar is draws dropping from exactly
//!   `k·m` to `O(k·log m)`.
//! * **Router-fed passes** — whole captured relaxed-f3 insertion rounds
//!   answered through `answer_insertion_batch_with_opts` at
//!   k = 1k/8k/32k trials, per-offer vs skip-ahead (both on the default
//!   blocked feed path; the knob is orthogonal to blocking). The
//!   acceptance bar is ≥ 2× whole-pass speedup on the reservoir-bound
//!   (RandomNeighbor-carrying) rounds at k ≥ 8k. Per-round reservoir
//!   draws are counted through `insertion_pass_reservoir_draws`.
//!
//! Run `cargo bench -p sgs-bench --bench reservoir` (add `smoke` for the
//! CI-sized configuration). Set `SGS_BENCH_JSON=<path>` to write the
//! machine-readable record committed as `BENCH_reservoir.json`
//! (recorded with `RUSTFLAGS="-C target-cpu=native"`, like
//! `BENCH_feedpath.json`).

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::{answer_insertion_batch_with_opts, insertion_pass_reservoir_draws, PassOpts};
use sgs_query::{Parallel, Query, ReservoirMode, RoundAdaptive};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::reservoir::ReservoirBank;
use sgs_stream::{EdgeStream, InsertionStream};
use std::hint::black_box;
use std::time::Instant;

/// Noise-robust sample statistic: minimum (scheduler noise on this box
/// is strictly additive; see the sharded bench notes).
fn time<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn bench_coins(samples: usize) -> (f64, f64, f64) {
    println!("\n== coin throughput (1M draws) ==");
    let n = 1_000_000usize;
    let range_ns = time(samples, || {
        let mut r = FastRng::seed_from_u64(1);
        let mut acc = 0u64;
        for i in 1..=n as u64 {
            acc += r.gen_range(0..i);
        }
        black_box(acc);
    }) as f64
        / n as f64;
    let unit_ns = time(samples, || {
        let mut r = FastRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..n {
            acc += r.gen_unit_f64();
        }
        black_box(acc);
    }) as f64
        / n as f64;
    let mut buf = vec![0.0f64; 4096];
    let fill_ns = time(samples, || {
        let mut r = FastRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..n / buf.len() {
            r.fill_unit_f64(&mut buf);
            acc += buf[0] + buf[buf.len() - 1];
        }
        black_box(acc);
    }) as f64
        / n as f64;
    println!("gen_range      {range_ns:>6.2} ns/draw");
    println!("gen_unit_f64   {unit_ns:>6.2} ns/draw");
    println!("fill_unit_f64  {fill_ns:>6.2} ns/draw (4096-lane blocks)");
    (range_ns, unit_ns, fill_ns)
}

struct BankRow {
    k: usize,
    offer_ns: u64,
    skip_ns: u64,
    offer_draws: u64,
    skip_draws: u64,
}

fn bench_direct_bank(ks: &[usize], m: usize, samples: usize) -> Vec<BankRow> {
    println!("\n== direct SoA bank: k lanes x {m} offers (offer_batch, block 256) ==");
    let items: Vec<u64> = (0..m as u64).collect();
    let mut rows = Vec::new();
    for &k in ks {
        let run = |mode: ReservoirMode| -> (u64, u64, u64) {
            let mut draws = 0;
            let mut checksum = 0u64;
            let ns = time(samples, || {
                let mut bank: ReservoirBank<u64> =
                    ReservoirBank::with_mode(k, 0xba ^ k as u64, mode);
                for chunk in items.chunks(256) {
                    bank.offer_batch(chunk);
                }
                draws = bank.rng_draws();
                checksum = bank.samples_iter().map(|s| s.unwrap()).sum();
                black_box(&bank);
            });
            (ns, draws, checksum)
        };
        let (offer_ns, offer_draws, _) = run(ReservoirMode::Offer);
        let (skip_ns, skip_draws, _) = run(ReservoirMode::Skip);
        assert_eq!(offer_draws, (k * m) as u64, "oracle draws exactly k·m");
        // H_m ≈ ln m + γ; the skip bank must sit near k·H_m, counted.
        let h_m = (m as f64).ln() + 0.5772;
        assert!(
            (skip_draws as f64) < 3.0 * k as f64 * h_m,
            "skip draws {skip_draws} not O(k log m)"
        );
        println!(
            "k={k:<6} offer {:>9.2} ms ({offer_draws:>10} draws)   skip {:>9.2} ms ({skip_draws:>8} draws)   {:.2}x time, {:.0}x fewer draws",
            offer_ns as f64 / 1e6,
            skip_ns as f64 / 1e6,
            offer_ns as f64 / skip_ns as f64,
            offer_draws as f64 / skip_draws as f64,
        );
        rows.push(BankRow {
            k,
            offer_ns,
            skip_ns,
            offer_draws,
            skip_draws,
        });
    }
    rows
}

/// Capture the real per-round batches of one relaxed-mode estimator run.
fn capture_batches(
    trials: usize,
    stream: &impl EdgeStream,
    bank_seed: u64,
    exec_seed: u64,
) -> Vec<(Vec<Query>, u64)> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let mut par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Relaxed,
                    split_seed(bank_seed, i as u64),
                )
            })
            .collect::<Vec<_>>(),
    );
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(exec_seed, pass);
        let (a, _) =
            answer_insertion_batch_with_opts(&batch, stream, pass_seed, PassOpts::default());
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

struct PassRow {
    k: usize,
    round: usize,
    nbr_queries: usize,
    offer_ns: u64,
    skip_ns: u64,
    offer_draws: u64,
    skip_draws: u64,
}

fn bench_router_fed(ks: &[usize], stream: &InsertionStream, samples: usize) -> Vec<PassRow> {
    println!("\n== router-fed relaxed-f3 insertion passes (triangle bank, default block) ==");
    let mut rows = Vec::new();
    for &k in ks {
        let batches = capture_batches(k, stream, 7 ^ k as u64, 5 ^ k as u64);
        for (round, (batch, seed)) in batches.iter().enumerate() {
            let nbr_queries = batch
                .iter()
                .filter(|q| matches!(q, Query::RandomNeighbor(_)))
                .count();
            let run = |mode: ReservoirMode| {
                let opts = PassOpts::with_reservoir(mode);
                // Warm-up, then timed.
                black_box(answer_insertion_batch_with_opts(batch, stream, *seed, opts));
                let ns = time(samples, || {
                    black_box(answer_insertion_batch_with_opts(batch, stream, *seed, opts));
                });
                let draws = insertion_pass_reservoir_draws(batch, stream, *seed, opts);
                (ns, draws)
            };
            let (offer_ns, offer_draws) = run(ReservoirMode::Offer);
            let (skip_ns, skip_draws) = run(ReservoirMode::Skip);
            println!(
                "k={k:<6} round {round} ({nbr_queries:>6} nbr queries)  offer {:>9.2} ms ({offer_draws:>9} draws)  skip {:>9.2} ms ({skip_draws:>7} draws)  {:.2}x",
                offer_ns as f64 / 1e6,
                skip_ns as f64 / 1e6,
                offer_ns as f64 / skip_ns as f64,
            );
            rows.push(PassRow {
                k,
                round,
                nbr_queries,
                offer_ns,
                skip_ns,
                offer_draws,
                skip_draws,
            });
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    // Router-fed workload: m ≫ n (average degree ~600), the dense
    // regime the paper's m^{3/2} trial bounds target and the shape where
    // reservoir offers dominate pass cost. Each pooled sampler is
    // offered ~deg(v) edges, so offers-per-lane is large and the
    // skip-ahead asymptotics (H_deg draws instead of deg) actually
    // bite; on a sparse graph (deg ≈ 30) there is almost nothing to
    // skip — acceptances land every few offers — and both modes are
    // routing-bound (the smoke configuration records that regime).
    let (bank_ks, bank_m, pass_ks, pass_n, pass_m, samples): (
        &[usize],
        usize,
        &[usize],
        usize,
        usize,
        usize,
    ) = if smoke {
        (&[1_000], 20_000, &[1_000], 600, 9_000, 3)
    } else {
        (
            &[1_000, 8_000, 32_000],
            60_000,
            &[1_000, 8_000, 32_000],
            1_500,
            600_000,
            5,
        )
    };
    println!("reservoir bench: per-offer oracle vs skip-ahead SoA bank (samples={samples}, statistic=min)");

    let (range_ns, unit_ns, fill_ns) = bench_coins(samples);
    let bank_rows = bench_direct_bank(bank_ks, bank_m, samples);

    println!("\n== captured estimator workload: gnm({pass_n}, {pass_m}) ==");
    let g = gen::gnm(pass_n, pass_m, 3);
    let ins = InsertionStream::from_graph(&g, 4);
    let pass_rows = bench_router_fed(pass_ks, &ins, samples);

    // Honesty checks: within a mode the blocked default answers equal the
    // scalar path; across modes, skip consumed far fewer counted draws on
    // every reservoir-carrying round.
    {
        let batches = capture_batches(
            pass_ks[0],
            &ins,
            7 ^ pass_ks[0] as u64,
            5 ^ pass_ks[0] as u64,
        );
        for (batch, seed) in &batches {
            for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
                let (a, _) = answer_insertion_batch_with_opts(
                    batch,
                    &ins,
                    *seed,
                    PassOpts::with_block(0).reservoir(mode),
                );
                let (b, _) = answer_insertion_batch_with_opts(
                    batch,
                    &ins,
                    *seed,
                    PassOpts::with_reservoir(mode),
                );
                assert_eq!(a, b, "blocked answers diverged from scalar in {mode:?}");
            }
        }
        for r in &pass_rows {
            if r.nbr_queries > 0 {
                assert!(
                    r.skip_draws * 4 < r.offer_draws,
                    "k={} round {}: skip draws {} not far below offer draws {}",
                    r.k,
                    r.round,
                    r.skip_draws,
                    r.offer_draws
                );
            }
        }
        println!("\nequivalence checks: blocked==scalar per mode, skip draws ≪ offer draws ✓");
    }

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let bank_json: Vec<String> = bank_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"k\": {}, \"offers_per_lane\": {bank_m}, \"offer_ns\": {}, \"skip_ns\": {}, \"offer_draws\": {}, \"skip_draws\": {}, \"speedup\": {:.2}, \"draw_reduction\": {:.1}}}",
                    r.k,
                    r.offer_ns,
                    r.skip_ns,
                    r.offer_draws,
                    r.skip_draws,
                    r.offer_ns as f64 / r.skip_ns as f64,
                    r.offer_draws as f64 / r.skip_draws as f64,
                )
            })
            .collect();
        let pass_json: Vec<String> = pass_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"k\": {}, \"round\": {}, \"nbr_queries\": {}, \"offer_pass_ns\": {}, \"skip_pass_ns\": {}, \"offer_draws\": {}, \"skip_draws\": {}, \"speedup\": {:.2}}}",
                    r.k,
                    r.round,
                    r.nbr_queries,
                    r.offer_ns,
                    r.skip_ns,
                    r.offer_draws,
                    r.skip_draws,
                    r.offer_ns as f64 / r.skip_ns as f64,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"description\": \"Skip-ahead reservoirs vs the per-offer scalar oracle. coins: raw RNG floor, ns per draw. direct_bank: k-lane SoA ReservoirBank absorbing m offers via offer_batch — offer mode is the in-file scalar baseline (draws exactly k*m, counted via rng_draws()), skip mode precomputes next_accept by the exact integer inverse transform (draws ~ k*H_m, counted). router_fed_passes: whole captured relaxed-f3 insertion rounds (triangle bank, gnm({pass_n},{pass_m}) — m >> n so offers-per-lane is large, the regime where skipping bites — default feed block) answered with each reservoir mode; rounds with nbr_queries > 0 are the reservoir-bound passes the >=2x acceptance bar applies to; draws counted through insertion_pass_reservoir_draws. Statistic: min over samples. Regenerate: RUSTFLAGS='-C target-cpu=native' SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench reservoir\",\n  \"rustflags\": \"{rustflags}\",\n  \"samples\": {samples},\n  \"router_workload\": \"gnm({pass_n}, {pass_m}), triangle bank, SamplerMode::Relaxed\",\n  \"coins_ns_per_draw\": {{\"gen_range\": {range_ns:.2}, \"gen_unit_f64\": {unit_ns:.2}, \"fill_unit_f64\": {fill_ns:.2}}},\n  \"direct_bank\": [\n{bank}\n  ],\n  \"router_fed_passes\": [\n{pass}\n  ]\n}}\n",
            rustflags = std::env::var("RUSTFLAGS").unwrap_or_default(),
            samples = samples,
            bank = bank_json.join(",\n"),
            pass = pass_json.join(",\n"),
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
