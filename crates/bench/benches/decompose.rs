//! Benchmarks for pattern preprocessing: decomposition search, `ρ(H)`,
//! automorphisms, and tuple multiplicity — the per-pattern setup cost of
//! the FGP sampler (paid once per plan, however many trials share it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_graph::decompose::{decompose, tuple_multiplicity};
use sgs_graph::Pattern;
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for p in [
        Pattern::triangle(),
        Pattern::clique(6),
        Pattern::clique(8),
        Pattern::cycle(7),
        Pattern::star(6),
        Pattern::path(7),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| {
                b.iter(|| black_box(decompose(p)));
            },
        );
    }
    group.finish();
}

fn bench_automorphisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("automorphism_count");
    for p in [Pattern::clique(7), Pattern::cycle(8), Pattern::star(7)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| {
                b.iter(|| black_box(p.automorphism_count()));
            },
        );
    }
    group.finish();
}

fn bench_tuple_multiplicity(c: &mut Criterion) {
    let p = Pattern::clique(6);
    let d = decompose(&p).unwrap();
    c.bench_function("tuple_multiplicity_k6", |b| {
        b.iter(|| black_box(tuple_multiplicity(&p, &d.pieces)));
    });
}

criterion_group!(
    benches,
    bench_decompose,
    bench_automorphisms,
    bench_tuple_multiplicity
);
criterion_main!(benches);
