//! Feed-path bench: per-update cost of the scalar vs the blocked hot
//! path, at each layer the block-oriented rework touched.
//!
//! Four sections:
//!
//! * **ℓ₀ bank** — the turnstile repetition bank, per update, across
//!   repetition counts. Three variants: the pre-SoA array-of-structs
//!   layout (replicated locally, the *scalar baseline*), the SoA bank
//!   driven per update, and the SoA bank driven in blocks
//!   (`L0Sampler::update_batch`). The acceptance bar for the rework is
//!   ≥ 1.5× blocked-vs-AoS throughput at R ≥ 16.
//! * **FlatIndex probes** — scalar `get` loop vs `probe_batch` on a
//!   mixed hit/miss key stream (the `f4` adjacency path of insertion
//!   passes).
//! * **Router passes** — whole captured estimator rounds answered
//!   through `answer_{insertion,turnstile}_batch_with_block` at block 0
//!   (scalar) and several block sizes: the end-to-end per-update cost.
//! * **Sharded composition** — the blocked path under 1 and 4 feed
//!   shards (critical-path pass latency, per-shard isolated timing),
//!   showing the block win composes with PR 2's shard scaling.
//!
//! Run `cargo bench -p sgs-bench --bench feedpath` (add `smoke` for the
//! CI-sized configuration). Set `SGS_BENCH_JSON=<path>` to write the
//! machine-readable record committed as `BENCH_feedpath.json`.

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::{answer_insertion_batch_with_block, answer_turnstile_batch_with_block};
use sgs_query::sharded::answer_insertion_batch_sharded_with_exec;
use sgs_query::{ExecPolicy, Parallel, PassOpts, Query, RoundAdaptive, RouterArena};
use sgs_stream::flat::{FlatIndex, ABSENT};
use sgs_stream::hash::{split_seed, splitmix64, FastRng, SeededHash};
use sgs_stream::l0::L0Sampler;
use sgs_stream::{EdgeStream, InsertionStream, ShardedFeed, TurnstileStream};
use std::hint::black_box;
use std::time::Instant;

/// Noise-robust sample statistic: minimum (scheduler noise on this box
/// is strictly additive; see the sharded bench notes).
fn time<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    ns.into_iter().min().unwrap_or(0)
}

// ---------------------------------------------------------------------
// The pre-SoA array-of-structs ℓ₀ bank, replicated verbatim: the scalar
// baseline the acceptance criterion is measured against.

#[derive(Clone, Copy, Default)]
struct OneSparse {
    count: i64,
    key_sum: i128,
    fingerprint: u64,
}

struct AosRepetition {
    level_salt: u64,
    fp_salt: u64,
    levels: Vec<OneSparse>,
}

struct AosL0 {
    base_hash: SeededHash,
    reps: Vec<AosRepetition>,
}

impl AosL0 {
    fn new(max_level: u32, reps: usize, seed: u64) -> Self {
        AosL0 {
            base_hash: SeededHash::new(split_seed(seed, 99)),
            reps: (0..reps)
                .map(|i| {
                    let s = split_seed(seed, 100 + i as u64);
                    AosRepetition {
                        level_salt: split_seed(s, 0),
                        fp_salt: split_seed(s, 1),
                        levels: vec![OneSparse::default(); max_level as usize + 1],
                    }
                })
                .collect(),
        }
    }

    #[inline]
    fn update(&mut self, key: u64, delta: i64) {
        let base = self.base_hash.hash64(key);
        for r in &mut self.reps {
            let max = (r.levels.len() - 1) as u32;
            let lvl = splitmix64(base ^ r.level_salt).trailing_zeros().min(max);
            let fp = splitmix64(base ^ r.fp_salt);
            for l in 0..=lvl as usize {
                let d = &mut r.levels[l];
                d.count += delta;
                d.key_sum += key as i128 * delta as i128;
                d.fingerprint = d.fingerprint.wrapping_add((delta as u64).wrapping_mul(fp));
            }
        }
    }

    fn checksum(&self) -> u64 {
        self.reps
            .iter()
            .flat_map(|r| r.levels.iter())
            .fold(0u64, |a, d| {
                a.wrapping_add(d.fingerprint)
                    .wrapping_add(d.count as u64)
                    .wrapping_add(d.key_sum as u64)
            })
    }
}

fn l0_updates(n: usize, seed: u64) -> Vec<(u64, i64)> {
    let mut rng = FastRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let key = rng.gen_range(1..200_000u64);
            let delta = if i % 5 == 4 { -1 } else { 1 };
            (key, delta)
        })
        .collect()
}

struct L0Row {
    reps: usize,
    aos_ns: f64,
    soa_scalar_ns: f64,
    blocked: Vec<(usize, f64)>,
}

fn bench_l0(
    reps_sweep: &[usize],
    blocks: &[usize],
    n_updates: usize,
    samples: usize,
) -> Vec<L0Row> {
    println!("\n== turnstile ℓ₀ repetition bank ({n_updates} updates, max_level 30) ==");
    let updates = l0_updates(n_updates, 0x10);
    let mut rows = Vec::new();
    for &reps in reps_sweep {
        let seed = 0x10aa ^ reps as u64;
        // AoS scalar baseline.
        let mut aos_best = u64::MAX;
        for _ in 0..samples {
            let mut s = AosL0::new(30, reps, seed);
            let t0 = Instant::now();
            for &(k, d) in &updates {
                s.update(k, d);
            }
            aos_best = aos_best.min(t0.elapsed().as_nanos() as u64);
            black_box(s.checksum());
        }
        // SoA bank, per-update scalar path.
        let mut soa_best = u64::MAX;
        let mut soa_sample = None;
        for _ in 0..samples {
            let mut s = L0Sampler::new(30, reps, seed);
            let t0 = Instant::now();
            for &(k, d) in &updates {
                s.update(k, d);
            }
            soa_best = soa_best.min(t0.elapsed().as_nanos() as u64);
            soa_sample = black_box(s.sample());
        }
        // SoA bank, blocked path.
        let mut blocked = Vec::new();
        for &block in blocks {
            let mut blk_best = u64::MAX;
            for _ in 0..samples {
                let mut s = L0Sampler::new(30, reps, seed);
                let t0 = Instant::now();
                for chunk in updates.chunks(block) {
                    s.update_batch(chunk);
                }
                blk_best = blk_best.min(t0.elapsed().as_nanos() as u64);
                // Honesty check: the blocked state answers like the scalar.
                assert_eq!(black_box(s.sample()), soa_sample);
            }
            blocked.push((block, blk_best as f64 / n_updates as f64));
        }
        let row = L0Row {
            reps,
            aos_ns: aos_best as f64 / n_updates as f64,
            soa_scalar_ns: soa_best as f64 / n_updates as f64,
            blocked,
        };
        let best_blk = row
            .blocked
            .iter()
            .map(|&(_, ns)| ns)
            .fold(f64::MAX, f64::min);
        println!(
            "R={:<3} aos {:>6.1} ns/upd   soa-scalar {:>6.1} ns/upd ({:.2}x)   soa-blocked best {:>6.1} ns/upd ({:.2}x)",
            row.reps,
            row.aos_ns,
            row.soa_scalar_ns,
            row.aos_ns / row.soa_scalar_ns,
            best_blk,
            row.aos_ns / best_blk,
        );
        rows.push(row);
    }
    rows
}

struct ProbeRow {
    block: usize,
    ns_per_probe: f64,
}

fn bench_probe(blocks: &[usize], n_probes: usize, samples: usize) -> (f64, Vec<ProbeRow>) {
    println!("\n== FlatIndex probes (4096-key table, {n_probes} probes, ~50% hits) ==");
    let mut ix = FlatIndex::with_capacity(4096);
    for k in 0..4096u64 {
        ix.insert_or_get(k * 2 + 1); // odd keys present
    }
    let mut rng = FastRng::seed_from_u64(7);
    let probes: Vec<u64> = (0..n_probes).map(|_| rng.gen_range(0..8192u64)).collect();
    let expect: u64 = probes
        .iter()
        .map(|&k| ix.get(k).unwrap_or(ABSENT) as u64)
        .sum();

    let scalar_ns = time(samples, || {
        let mut acc = 0u64;
        for &k in &probes {
            acc += ix.get(k).unwrap_or(ABSENT) as u64;
        }
        assert_eq!(acc, expect);
    });
    let scalar = scalar_ns as f64 / n_probes as f64;
    println!("scalar get        {scalar:>6.2} ns/probe");

    let mut out: Vec<u32> = Vec::new();
    let mut rows = Vec::new();
    for &block in blocks {
        let ns = time(samples, || {
            let mut acc = 0u64;
            for chunk in probes.chunks(block) {
                ix.probe_batch(chunk, &mut out);
                acc += out.iter().map(|&id| id as u64).sum::<u64>();
            }
            assert_eq!(acc, expect);
        });
        let per = ns as f64 / n_probes as f64;
        println!(
            "probe_batch/{block:<5} {per:>6.2} ns/probe ({:.2}x)",
            scalar / per
        );
        rows.push(ProbeRow {
            block,
            ns_per_probe: per,
        });
    }
    (scalar, rows)
}

/// Capture the real per-round batches of one estimator run.
fn capture_batches(
    trials: usize,
    stream: &impl EdgeStream,
    mode: SamplerMode,
    bank_seed: u64,
    exec_seed: u64,
    turnstile: bool,
) -> Vec<(Vec<Query>, u64)> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let mut par = Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(bank_seed, i as u64)))
            .collect::<Vec<_>>(),
    );
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(exec_seed, pass);
        let (a, _) = if turnstile {
            answer_turnstile_batch_with_block(&batch, stream, pass_seed, 0)
        } else {
            answer_insertion_batch_with_block(&batch, stream, pass_seed, 0)
        };
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

struct PassRow {
    block: usize,
    ns_per_update: f64,
}

fn bench_pass(
    label: &str,
    batches: &[(Vec<Query>, u64)],
    stream: &impl EdgeStream,
    blocks: &[usize],
    samples: usize,
    turnstile: bool,
) -> (f64, Vec<PassRow>) {
    let updates = (batches.len() * stream.len()) as u64;
    let run_set = |block: usize| {
        for (batch, seed) in batches {
            if turnstile {
                black_box(answer_turnstile_batch_with_block(
                    batch, stream, *seed, block,
                ));
            } else {
                black_box(answer_insertion_batch_with_block(
                    batch, stream, *seed, block,
                ));
            }
        }
    };
    run_set(0); // warm-up
    let scalar = time(samples, || run_set(0)) as f64 / updates as f64;
    println!("{label:<30} scalar  {scalar:>8.1} ns/upd");
    let mut rows = Vec::new();
    for &block in blocks {
        run_set(block);
        let per = time(samples, || run_set(block)) as f64 / updates as f64;
        println!(
            "{label:<30} /{block:<6} {per:>8.1} ns/upd ({:.2}x)",
            scalar / per
        );
        rows.push(PassRow {
            block,
            ns_per_update: per,
        });
    }
    (scalar, rows)
}

struct ShardRow {
    shards: usize,
    block: usize,
    critical_ns: u64,
    shard_load_ns: Vec<u64>,
}

/// Critical path (Σ over passes of the slowest shard) plus per-shard
/// total feed nanos, workers forced sequential so each shard is timed
/// in isolation.
fn bench_sharded_composition(
    batches: &[(Vec<Query>, u64)],
    stream: &InsertionStream,
    shard_counts: &[usize],
    blocks: &[usize],
    samples: usize,
) -> Vec<ShardRow> {
    println!("\n== sharded composition (critical-path pass latency, workers sequential) ==");
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let feed = ShardedFeed::partition(stream, shards);
        for &block in blocks {
            let opts = PassOpts::with_block(block);
            let policy = ExecPolicy::serial();
            let mut arena = RouterArena::new();
            for _ in 0..2 {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch_sharded_with_exec(
                        batch, &feed, *seed, &mut arena, opts, policy,
                    ));
                }
            }
            let _ = arena.take_shard_pass_nanos();
            for _ in 0..samples {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch_sharded_with_exec(
                        batch, &feed, *seed, &mut arena, opts, policy,
                    ));
                }
            }
            let nanos = arena.take_shard_pass_nanos();
            let passes = nanos[0].len() / samples;
            let critical_ns = (0..samples)
                .map(|it| {
                    (it * passes..(it + 1) * passes)
                        .map(|e| nanos.iter().map(|s| s[e]).max().unwrap_or(0))
                        .sum::<u64>()
                })
                .min()
                .unwrap_or(0);
            // Per-shard load: total feed nanos per shard across one
            // best-effort iteration set (the histogram groundwork for
            // shard-aware trial placement).
            let shard_load_ns: Vec<u64> = nanos
                .iter()
                .map(|s| s.iter().sum::<u64>() / samples as u64)
                .collect();
            println!(
                "shards {shards} block {:<6} critical {:>10.2} ms  load {:?} µs",
                if block == 0 {
                    "scalar".to_string()
                } else {
                    block.to_string()
                },
                critical_ns as f64 / 1e6,
                shard_load_ns.iter().map(|&n| n / 1000).collect::<Vec<_>>(),
            );
            rows.push(ShardRow {
                shards,
                block,
                critical_ns,
                shard_load_ns,
            });
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (l0_updates_n, reps_sweep, probe_n, ins_trials, tst_trials, samples): (
        usize,
        &[usize],
        usize,
        usize,
        usize,
        usize,
    ) = if smoke {
        (20_000, &[16], 32_768, 1_000, 150, 3)
    } else {
        (60_000, &[8, 16, 32], 131_072, 4_000, 600, 9)
    };
    let blocks: &[usize] = &[16, 64, 256];
    println!("feedpath bench: scalar vs blocked hot path (samples={samples}, statistic=min)");

    let l0_rows = bench_l0(reps_sweep, blocks, l0_updates_n, samples);
    let (probe_scalar, probe_rows) = bench_probe(blocks, probe_n, samples);

    println!("\n== captured estimator passes (triangle bank, gnm(600, 9000)) ==");
    let g = gen::gnm(600, 9_000, 3);
    let ins = InsertionStream::from_graph(&g, 4);
    let ins_batches = capture_batches(ins_trials, &ins, SamplerMode::Relaxed, 7, 5, false);
    let (ins_scalar, ins_rows) = bench_pass(
        &format!("insertion relaxed-f3 ({ins_trials} trials)"),
        &ins_batches,
        &ins,
        blocks,
        samples,
        false,
    );
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 6);
    let tst_batches = capture_batches(tst_trials, &tst, SamplerMode::Relaxed, 8, 9, true);
    let (tst_scalar, tst_rows) = bench_pass(
        &format!("turnstile relaxed-f3 ({tst_trials} trials)"),
        &tst_batches,
        &tst,
        blocks,
        samples,
        true,
    );

    let shard_rows = bench_sharded_composition(&ins_batches, &ins, &[1, 4], &[0, 64], samples);

    // Equivalence spot check: one full blocked answer set must equal the
    // scalar one (the test suites prove this exhaustively; keep the bench
    // honest about what it measured).
    for (batch, seed) in &ins_batches {
        let (a, _) = answer_insertion_batch_with_block(batch, &ins, *seed, 0);
        let (b, _) = answer_insertion_batch_with_block(batch, &ins, *seed, 64);
        assert_eq!(a, b, "blocked insertion answers diverged from scalar");
    }
    for (batch, seed) in &tst_batches {
        let (a, _) = answer_turnstile_batch_with_block(batch, &tst, *seed, 0);
        let (b, _) = answer_turnstile_batch_with_block(batch, &tst, *seed, 64);
        assert_eq!(a, b, "blocked turnstile answers diverged from scalar");
    }
    println!("\nequivalence check: blocked answers identical to scalar ✓");

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mut l0_json = String::new();
        for r in &l0_rows {
            let blocked: Vec<String> = r
                .blocked
                .iter()
                .map(|&(b, ns)| format!("{{\"block\": {b}, \"ns_per_update\": {ns:.2}}}"))
                .collect();
            let best_blk = r.blocked.iter().map(|&(_, ns)| ns).fold(f64::MAX, f64::min);
            l0_json.push_str(&format!(
                "    {{\"reps\": {}, \"aos_scalar_ns_per_update\": {:.2}, \"soa_scalar_ns_per_update\": {:.2}, \"soa_blocked\": [{}], \"speedup_blocked_vs_aos_scalar\": {:.2}}},\n",
                r.reps,
                r.aos_ns,
                r.soa_scalar_ns,
                blocked.join(", "),
                r.aos_ns / best_blk,
            ));
        }
        let l0_json = l0_json.trim_end().trim_end_matches(',').to_string();
        let probe_json: Vec<String> = probe_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"block\": {}, \"ns_per_probe\": {:.3}, \"speedup_vs_scalar\": {:.2}}}",
                    r.block,
                    r.ns_per_probe,
                    probe_scalar / r.ns_per_probe
                )
            })
            .collect();
        let pass_json = |scalar: f64, rows: &[PassRow]| -> String {
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    format!(
                        "      {{\"block\": {}, \"ns_per_update\": {:.1}, \"speedup_vs_scalar\": {:.2}}}",
                        r.block,
                        r.ns_per_update,
                        scalar / r.ns_per_update
                    )
                })
                .collect();
            format!(
                "{{\"scalar_ns_per_update\": {:.1}, \"blocked\": [\n{}\n    ]}}",
                scalar,
                rows.join(",\n")
            )
        };
        let shard_json: Vec<String> = shard_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"shards\": {}, \"block\": {}, \"critical_path_ns\": {}, \"shard_load_ns\": {:?}}}",
                    r.shards, r.block, r.critical_ns, r.shard_load_ns
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"description\": \"Block-oriented feed path vs scalar per-update path. l0_bank: the turnstile repetition bank per update — aos_scalar replicates the pre-SoA Vec<Repetition> layout (the scalar baseline), soa_scalar is the SoA bank driven one update at a time, soa_blocked drives it through update_batch. flat_probe: FlatIndex::get vs probe_batch, 4096-key table, ~50% hit rate. passes: whole captured triangle-bank rounds answered at block 0 (scalar) vs blocked sizes, end-to-end ns per stream update. sharded: critical-path pass latency (per-shard isolated timing) of the sharded insertion path at scalar vs block 64, plus per-shard total feed nanos (shard_load_ns — the load histogram groundwork for shard-aware trial placement). Statistic: min over samples. Regenerate: RUSTFLAGS='-C target-cpu=native' SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench feedpath\",\n  \"rustflags\": \"{rustflags}\",\n  \"samples\": {samples},\n  \"l0_bank\": [\n{l0_json}\n  ],\n  \"flat_probe\": {{\"scalar_ns_per_probe\": {probe_scalar:.3}, \"blocked\": [\n{probe}\n  ]}},\n  \"insertion_pass\": {ins},\n  \"turnstile_pass\": {tst},\n  \"sharded_composition\": [\n{shard}\n  ]\n}}\n",
            rustflags = std::env::var("RUSTFLAGS").unwrap_or_default(),
            samples = samples,
            l0_json = l0_json,
            probe_scalar = probe_scalar,
            probe = probe_json.join(",\n"),
            ins = pass_json(ins_scalar, &ins_rows),
            tst = pass_json(tst_scalar, &tst_rows),
            shard = shard_json.join(",\n"),
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
