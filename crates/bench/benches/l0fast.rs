//! Survivor-level dispatch bench: the predicated full-bank ℓ₀ feed
//! path (PR 3's blocked baseline) against the dispatch path that walks
//! only the rows a key actually survives to.
//!
//! Two sections:
//!
//! * **ℓ₀ bank** — per-update cost of the repetition bank across
//!   repetition counts R = 8/16/32, four variants: predicated scalar
//!   (`update`), predicated blocked (`update_batch`), dispatch scalar
//!   and dispatch blocked (`update_with` / `update_batch_with` under
//!   [`L0Mode::Dispatch`]). The predicated numbers are the in-file
//!   baseline; a key survives to level ℓ with probability 2^-ℓ, so
//!   dispatch touches E ≈ 2 of the L+1 rows the predicated path scans.
//! * **Turnstile pass** — whole captured estimator rounds answered via
//!   `answer_turnstile_batch_with_opts` under both ℓ₀ modes at block 0
//!   and blocked sizes: end-to-end ns per stream update. The acceptance
//!   bar is ≥ 2× dispatch-vs-predicated at the blocked settings.
//!
//! Every timed state is asserted bit-identical across variants before a
//! number is reported. Run `cargo bench -p sgs-bench --bench l0fast`
//! (add `smoke` for the CI-sized configuration). Set
//! `SGS_BENCH_JSON=<path>` to write the machine-readable record
//! committed as `BENCH_l0fast.json`.

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::answer_turnstile_batch_with_opts;
use sgs_query::{L0Mode, Parallel, PassOpts, Query, RoundAdaptive};
use sgs_stream::hash::{split_seed, FastRng};
use sgs_stream::l0::L0Sampler;
use sgs_stream::{EdgeStream, TurnstileStream};
use std::hint::black_box;
use std::time::Instant;

fn l0_updates(n: usize, seed: u64) -> Vec<(u64, i64)> {
    let mut rng = FastRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let key = rng.gen_range(1..200_000u64);
            let delta = if i % 5 == 4 { -1 } else { 1 };
            (key, delta)
        })
        .collect()
}

struct ModeCost {
    scalar_ns: f64,
    blocked: Vec<(usize, f64)>,
}

struct BankRow {
    reps: usize,
    predicated: ModeCost,
    dispatch: ModeCost,
}

/// Time one ℓ₀ feed variant end-to-end over the update set, returning
/// the best-of-samples nanos and the drained sample for equivalence.
fn time_bank<F: Fn(&mut L0Sampler)>(
    reps: usize,
    seed: u64,
    samples: usize,
    feed: F,
) -> (u64, Option<u64>) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..samples {
        let mut s = L0Sampler::new(30, reps, seed);
        let t0 = Instant::now();
        feed(&mut s);
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = black_box(s.sample());
    }
    (best, out)
}

fn bench_bank(reps_sweep: &[usize], blocks: &[usize], n: usize, samples: usize) -> Vec<BankRow> {
    println!("\n== ℓ₀ repetition bank: predicated vs survivor-level dispatch ({n} updates, max_level 30) ==");
    let updates = l0_updates(n, 0x10);
    let per = |ns: u64| ns as f64 / n as f64;
    let mut rows = Vec::new();
    for &reps in reps_sweep {
        let seed = 0x10aa ^ reps as u64;
        let cost = |mode: L0Mode| -> ModeCost {
            let (scalar_ns, scalar_sample) = time_bank(reps, seed, samples, |s| {
                for &(k, d) in &updates {
                    s.update_with(mode, k, d);
                }
            });
            let blocked = blocks
                .iter()
                .map(|&block| {
                    let (ns, sample) = time_bank(reps, seed, samples, |s| {
                        for chunk in updates.chunks(block) {
                            s.update_batch_with(mode, chunk);
                        }
                    });
                    assert_eq!(sample, scalar_sample, "{mode:?}/{block} diverged");
                    (block, per(ns))
                })
                .collect();
            ModeCost {
                scalar_ns: per(scalar_ns),
                blocked,
            }
        };
        let predicated = cost(L0Mode::Predicated);
        let dispatch = cost(L0Mode::Dispatch);
        // Cross-mode honesty check on a fresh pair of states.
        let (_, a) = time_bank(reps, seed, 1, |s| {
            for &(k, d) in &updates {
                s.update_with(L0Mode::Predicated, k, d);
            }
        });
        let (_, b) = time_bank(reps, seed, 1, |s| {
            for chunk in updates.chunks(64) {
                s.update_batch_with(L0Mode::Dispatch, chunk);
            }
        });
        assert_eq!(a, b, "dispatch state diverged from predicated at R={reps}");
        let best = |m: &ModeCost| m.blocked.iter().map(|&(_, ns)| ns).fold(f64::MAX, f64::min);
        println!(
            "R={:<3} predicated scalar {:>6.1} / blocked best {:>6.1} ns/upd   dispatch scalar {:>6.1} ({:.2}x) / blocked best {:>6.1} ns/upd ({:.2}x)",
            reps,
            predicated.scalar_ns,
            best(&predicated),
            dispatch.scalar_ns,
            predicated.scalar_ns / dispatch.scalar_ns,
            best(&dispatch),
            best(&predicated) / best(&dispatch),
        );
        rows.push(BankRow {
            reps,
            predicated,
            dispatch,
        });
    }
    rows
}

/// Capture the real per-round turnstile batches of one estimator run.
fn capture_batches(trials: usize, stream: &TurnstileStream) -> Vec<(Vec<Query>, u64)> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let mut par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(plan.clone(), SamplerMode::Relaxed, split_seed(8, i as u64))
            })
            .collect::<Vec<_>>(),
    );
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(9, pass);
        let (a, _) =
            answer_turnstile_batch_with_opts(&batch, stream, pass_seed, PassOpts::oracle());
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

struct PassRow {
    mode: L0Mode,
    block: usize,
    ns_per_update: f64,
}

fn bench_pass(
    batches: &[(Vec<Query>, u64)],
    stream: &TurnstileStream,
    blocks: &[usize],
    samples: usize,
) -> Vec<PassRow> {
    println!("\n== whole turnstile passes (triangle bank, both ℓ₀ modes) ==");
    let updates = (batches.len() * stream.len()) as u64;
    let mut rows = Vec::new();
    for &mode in &[L0Mode::Predicated, L0Mode::Dispatch] {
        for &block in blocks {
            let opts = PassOpts::with_block(block).l0(mode);
            let run_set = || {
                for (batch, seed) in batches {
                    black_box(answer_turnstile_batch_with_opts(batch, stream, *seed, opts));
                }
            };
            run_set(); // warm-up
            let per = {
                let mut best = u64::MAX;
                for _ in 0..samples {
                    let t0 = Instant::now();
                    run_set();
                    best = best.min(t0.elapsed().as_nanos() as u64);
                }
                best as f64 / updates as f64
            };
            println!(
                "{:<10} block {:<6} {per:>8.1} ns/upd",
                mode.as_str(),
                if block == 0 {
                    "scalar".to_string()
                } else {
                    block.to_string()
                },
            );
            rows.push(PassRow {
                mode,
                block,
                ns_per_update: per,
            });
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a.contains("smoke"));
    let (bank_n, reps_sweep, trials, samples): (usize, &[usize], usize, usize) = if smoke {
        (20_000, &[8], 150, 3)
    } else {
        (60_000, &[8, 16, 32], 600, 9)
    };
    let bank_blocks: &[usize] = &[16, 64, 256];
    let pass_blocks: &[usize] = &[0, 64, 128];
    println!(
        "l0fast bench: predicated vs survivor-level dispatch (samples={samples}, statistic=min)"
    );

    let bank_rows = bench_bank(reps_sweep, bank_blocks, bank_n, samples);

    let g = gen::gnm(600, 9_000, 3);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 6);
    let batches = capture_batches(trials, &tst);

    // Equivalence first: every answer set must be identical across the
    // four mode × block settings before any timing is trusted.
    for (batch, seed) in &batches {
        let oracle = answer_turnstile_batch_with_opts(batch, &tst, *seed, PassOpts::oracle()).0;
        for &mode in &[L0Mode::Predicated, L0Mode::Dispatch] {
            for &block in pass_blocks {
                let opts = PassOpts::with_block(block).l0(mode);
                let got = answer_turnstile_batch_with_opts(batch, &tst, *seed, opts).0;
                assert_eq!(got, oracle, "{mode:?}/{block} answers diverged");
            }
        }
    }
    println!("equivalence check: dispatch answers identical to predicated oracle ✓");

    let pass_rows = bench_pass(&batches, &tst, pass_blocks, samples);

    let pass_ns = |mode: L0Mode, block: usize| {
        pass_rows
            .iter()
            .find(|r| r.mode == mode && r.block == block)
            .map(|r| r.ns_per_update)
            .unwrap_or(f64::NAN)
    };
    // Headline ratio at the executor's default block size
    // (`sgs_query::exec::DEFAULT_BLOCK` = 128), predicated vs dispatch.
    let whole_pass_speedup = pass_ns(L0Mode::Predicated, 128) / pass_ns(L0Mode::Dispatch, 128);
    println!("\nwhole-pass dispatch speedup at block 128 (default): {whole_pass_speedup:.2}x");

    if let Ok(path) = std::env::var("SGS_BENCH_JSON") {
        let mode_json = |m: &ModeCost| {
            let blocked: Vec<String> = m
                .blocked
                .iter()
                .map(|&(b, ns)| format!("{{\"block\": {b}, \"ns_per_update\": {ns:.2}}}"))
                .collect();
            format!(
                "{{\"scalar_ns_per_update\": {:.2}, \"blocked\": [{}]}}",
                m.scalar_ns,
                blocked.join(", ")
            )
        };
        let bank_json: Vec<String> = bank_rows
            .iter()
            .map(|r| {
                let best = |m: &ModeCost| {
                    m.blocked.iter().map(|&(_, ns)| ns).fold(f64::MAX, f64::min)
                };
                format!(
                    "    {{\"reps\": {}, \"predicated\": {}, \"dispatch\": {}, \"speedup_dispatch_vs_predicated_blocked\": {:.2}}}",
                    r.reps,
                    mode_json(&r.predicated),
                    mode_json(&r.dispatch),
                    best(&r.predicated) / best(&r.dispatch),
                )
            })
            .collect();
        let pass_json: Vec<String> = pass_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"l0\": \"{}\", \"block\": {}, \"ns_per_update\": {:.1}}}",
                    r.mode.as_str(),
                    r.block,
                    r.ns_per_update
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"description\": \"Survivor-level dispatch vs the predicated full-bank ℓ₀ feed path. l0_bank: the turnstile repetition bank per update at R=8/16/32 — predicated scans every level row with a masked add (PR 3's blocked baseline, the in-file baseline), dispatch derives each repetition's survivor level from the prehashed block and touches only rows 0..=ℓ (E≈2 of L+1). turnstile_pass: whole captured triangle-bank rounds answered through answer_turnstile_batch_with_opts under both modes, end-to-end ns per stream update; whole_pass_speedup_block128 is the dispatch-vs-predicated ratio at the executor default block size 128 (acceptance bar ≥ 2x). All variants asserted bit-identical in-bench before timing is reported. Statistic: min over samples. Regenerate: RUSTFLAGS='-C target-cpu=native' SGS_BENCH_JSON=<path> cargo bench -p sgs-bench --bench l0fast\",\n  \"rustflags\": \"{rustflags}\",\n  \"samples\": {samples},\n  \"l0_bank\": [\n{bank}\n  ],\n  \"turnstile_pass\": [\n{pass}\n  ],\n  \"whole_pass_speedup_block128\": {speedup:.2}\n}}\n",
            rustflags = std::env::var("RUSTFLAGS").unwrap_or_default(),
            samples = samples,
            bank = bank_json.join(",\n"),
            pass = pass_json.join(",\n"),
            speedup = whole_pass_speedup,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
