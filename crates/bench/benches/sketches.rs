//! Microbenchmarks for the streaming sketches: ℓ₀-sampler update/query
//! throughput and reservoir sampling throughput — the per-update cost
//! drivers of Theorems 9 and 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgs_stream::l0::{L0Sampler, DEFAULT_REPS};
use sgs_stream::reservoir::ReservoirSampler;
use std::hint::black_box;

fn bench_l0_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("l0_update");
    for &levels in &[16u32, 32, 48] {
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| {
                b.iter(|| {
                    let mut s = L0Sampler::new(levels, DEFAULT_REPS, 7);
                    for k in 0..1024u64 {
                        s.update(black_box(k * 2654435761), 1);
                    }
                    black_box(s.sample())
                });
            },
        );
    }
    group.finish();
}

fn bench_l0_sample(c: &mut Criterion) {
    let mut s = L0Sampler::new(32, DEFAULT_REPS, 9);
    for k in 0..4096u64 {
        s.update(k * 11400714819323198485, 1);
    }
    c.bench_function("l0_sample_query", |b| b.iter(|| black_box(s.sample())));
}

fn bench_reservoir(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir_offer");
    group.throughput(Throughput::Elements(65536));
    group.bench_function("single", |b| {
        b.iter(|| {
            let mut r = ReservoirSampler::new(3);
            for i in 0..65536u64 {
                r.offer(black_box(i));
            }
            black_box(r.sample())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_l0_update, bench_l0_sample, bench_reservoir);
criterion_main!(benches);
