//! Benchmarks for the ERS clique-counting pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_core::ers::{count_cliques_insertion, ErsParams};
use sgs_graph::{degeneracy::degeneracy, exact, gen};
use sgs_stream::InsertionStream;
use std::hint::black_box;

fn bench_ers_triangles(c: &mut Criterion) {
    let g = gen::barabasi_albert(400, 5, 3);
    let lam = degeneracy(&g);
    let exact_t = exact::cliques::count_cliques(&g, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let mut group = c.benchmark_group("ers_k3_ba400");
    group.sample_size(10);
    for &instances in &[1usize, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &instances,
            |b, &instances| {
                let params = ErsParams::practical(3, lam, 0.4, exact_t as f64 * 0.5);
                b.iter(|| black_box(count_cliques_insertion(&params, &stream, instances, 5)));
            },
        );
    }
    group.finish();
}

fn bench_ers_by_r(c: &mut Criterion) {
    let g = gen::barabasi_albert(200, 5, 7);
    let lam = degeneracy(&g);
    let stream = InsertionStream::from_graph(&g, 8);
    let mut group = c.benchmark_group("ers_by_r_ba200");
    group.sample_size(10);
    for &r in &[3usize, 4] {
        let exact_r = exact::cliques::count_cliques(&g, r).max(1);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let mut params = ErsParams::practical(r, lam, 0.4, exact_r as f64 * 0.5);
            params.q_act = 2;
            b.iter(|| black_box(count_cliques_insertion(&params, &stream, 1, 9)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ers_triangles, bench_ers_by_r);
criterion_main!(benches);
