//! Executor benchmark: the QueryRouter-based pass emulation vs the frozen
//! pre-refactor reference (`sgs_query::reference`), as the parallel trial
//! count grows.
//!
//! Two views, both recorded in `BENCH_executor.json` (run with
//! `CRITERION_JSON=BENCH_executor.json`):
//!
//! * `insertion_pass/...` — the refactored layer in isolation: the three
//!   *real* merged batches of a triangle-estimator run are captured once,
//!   then each full 3-pass round-trip is re-answered through the router
//!   and through the reference emulation, identical seeds. Throughput is
//!   stream updates per second across the 3 passes; this is the number
//!   the ISSUE's ≥2× acceptance bar refers to.
//! * `insertion_full/...` / `turnstile_full/...` — the end-to-end
//!   estimator (sampler bank + executor), showing how much of the
//!   full-run wall clock the routing layer recovers. The turnstile side
//!   is expected to be near parity: its cost is dominated by the
//!   per-query ℓ₀-sketch updates, which are inherent to the model, not
//!   to routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::{answer_insertion_batch, run_insertion, run_turnstile};
use sgs_query::reference::{
    answer_insertion_batch_reference, run_insertion_reference, run_turnstile_reference,
};
use sgs_query::{Parallel, Query, RoundAdaptive};
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, InsertionStream, TurnstileStream};
use std::hint::black_box;

/// Whether a `cargo bench -- <filter>` substring filter selects `id`.
/// Mirrors the harness's skip logic so expensive setup (batch capture)
/// is not paid for configurations the filter will skip anyway — e.g.
/// CI's `insertion_pass/router/1000` smoke run.
fn filter_selects(id: &str) -> bool {
    match std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        Some(f) => id.contains(f.as_str()),
        None => true,
    }
}

/// The same seeded sampler bank both executors drive — byte-identical
/// inputs, so any measured delta is purely the executor layer.
fn bank(
    pattern: &Pattern,
    mode: SamplerMode,
    trials: usize,
    seed: u64,
) -> Parallel<SubgraphSampler> {
    let plan = SamplerPlan::new(pattern).unwrap();
    Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(seed, i as u64)))
            .collect(),
    )
}

/// Capture the real per-round batches of one triangle-estimator run by
/// driving the protocol with the production executor.
fn capture_batches(
    trials: usize,
    mode: SamplerMode,
    stream: &InsertionStream,
    bank_seed: u64,
    exec_seed: u64,
) -> Vec<(Vec<Query>, u64)> {
    let mut par = bank(&Pattern::triangle(), mode, trials, bank_seed);
    let mut batches = Vec::new();
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(exec_seed, pass);
        let (a, _) = answer_insertion_batch(&batch, stream, pass_seed);
        batches.push((batch, pass_seed));
        answers = a;
    }
    batches
}

fn bench_insertion_pass(c: &mut Criterion) {
    // Stream long enough that per-update routing, not per-round setup,
    // dominates — the regime the ROADMAP's traffic story lives in.
    let g = gen::gnm(2000, 48_000, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let mut group = c.benchmark_group("insertion_pass");
    group.sample_size(15);
    for &k in &[1_000usize, 8_000, 32_000] {
        if !filter_selects(&format!("insertion_pass/router/{k}"))
            && !filter_selects(&format!("insertion_pass/reference/{k}"))
        {
            continue;
        }
        let batches = capture_batches(k, SamplerMode::Indexed, &stream, 7, 5);
        let updates: u64 = (batches.len() * stream.len()) as u64;
        group.throughput(Throughput::Elements(updates));
        group.bench_with_input(BenchmarkId::new("router", k), &batches, |b, batches| {
            b.iter(|| {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch(batch, &stream, *seed));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &batches, |b, batches| {
            b.iter(|| {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch_reference(batch, &stream, *seed));
                }
            });
        });
    }
    group.finish();
}

/// The relaxed-`f3` workload (Algorithm 5's query mix answered on an
/// insertion-only stream): thousands of pending `RandomNeighbor` queries
/// per pass. This is the per-update pathology the QueryRouter exists
/// for — the pre-refactor executor scans *every* pending neighbor
/// sampler on *every* update, the router dispatches O(1 + hits).
fn bench_insertion_pass_relaxed(c: &mut Criterion) {
    let g = gen::gnm(800, 12_000, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let mut group = c.benchmark_group("insertion_pass_relaxed");
    group.sample_size(10);
    for &k in &[1_000usize, 8_000, 32_000] {
        if !filter_selects(&format!("insertion_pass_relaxed/router/{k}"))
            && !filter_selects(&format!("insertion_pass_relaxed/reference/{k}"))
        {
            continue;
        }
        let batches = capture_batches(k, SamplerMode::Relaxed, &stream, 7, 5);
        let updates: u64 = (batches.len() * stream.len()) as u64;
        group.throughput(Throughput::Elements(updates));
        group.bench_with_input(BenchmarkId::new("router", k), &batches, |b, batches| {
            b.iter(|| {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch(batch, &stream, *seed));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &batches, |b, batches| {
            b.iter(|| {
                for (batch, seed) in batches {
                    black_box(answer_insertion_batch_reference(batch, &stream, *seed));
                }
            });
        });
    }
    group.finish();
}

fn bench_insertion_full(c: &mut Criterion) {
    let g = gen::gnm(2000, 48_000, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let updates_per_run = 3 * stream.len() as u64;
    let mut group = c.benchmark_group("insertion_full");
    group.sample_size(10);
    for &k in &[1_000usize, 8_000, 32_000] {
        group.throughput(Throughput::Elements(updates_per_run));
        group.bench_with_input(BenchmarkId::new("router", k), &k, |b, &k| {
            b.iter(|| {
                let par = bank(&Pattern::triangle(), SamplerMode::Indexed, k, 7);
                black_box(run_insertion(par, &stream, 5))
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &k, |b, &k| {
            b.iter(|| {
                let par = bank(&Pattern::triangle(), SamplerMode::Indexed, k, 7);
                black_box(run_insertion_reference(par, &stream, 5))
            });
        });
    }
    group.finish();
}

fn bench_turnstile_full(c: &mut Criterion) {
    let g = gen::gnm(150, 900, 11);
    let stream = TurnstileStream::from_graph_with_churn(&g, 1.0, 12);
    let updates_per_run = 3 * stream.len() as u64;
    let mut group = c.benchmark_group("turnstile_full");
    group.sample_size(10);
    for &k in &[200usize, 1_000] {
        group.throughput(Throughput::Elements(updates_per_run));
        group.bench_with_input(BenchmarkId::new("router", k), &k, |b, &k| {
            b.iter(|| {
                let par = bank(&Pattern::triangle(), SamplerMode::Relaxed, k, 17);
                black_box(run_turnstile(par, &stream, 15))
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &k, |b, &k| {
            b.iter(|| {
                let par = bank(&Pattern::triangle(), SamplerMode::Relaxed, k, 17);
                black_box(run_turnstile_reference(par, &stream, 15))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insertion_pass,
    bench_insertion_pass_relaxed,
    bench_insertion_full,
    bench_turnstile_full
);
criterion_main!(benches);
