//! Phase-level timing breakdown of the insertion executors — a quick
//! diagnostic companion to `benches/executor.rs` (not an experiment).
//!
//! Usage: `cargo run --release -p sgs-bench --bin profile_executor [trials]`

use sgs_core::fgp::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{gen, Pattern};
use sgs_query::exec::{answer_insertion_batch, run_insertion};
use sgs_query::reference::{answer_insertion_batch_reference, run_insertion_reference};
use sgs_query::{Parallel, QueryRouter, RoundAdaptive, RouterMode};
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, InsertionStream};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bank(trials: usize, seed: u64) -> Parallel<SubgraphSampler> {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Indexed,
                    split_seed(seed, i as u64),
                )
            })
            .collect(),
    )
}

const REPS: usize = 20;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|x| x.parse().ok())
        .unwrap_or(8000);
    let g = gen::gnm(2000, 48_000, 3);
    let stream = InsertionStream::from_graph(&g, 4);

    // Capture the real protocol batches, then time each phase warm
    // (minimum of REPS runs).
    let mut par = bank(trials, 7);
    let mut answers = Vec::new();
    let mut pass = 0u64;
    loop {
        let batch = par.next_round(&answers);
        if batch.is_empty() {
            break;
        }
        pass += 1;
        let pass_seed = split_seed(5, pass);

        let mut build_time = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            black_box(QueryRouter::build(&batch, RouterMode::Insertion));
            build_time = build_time.min(t.elapsed());
        }
        let mut feed_time = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            let mut r = QueryRouter::build(&batch, RouterMode::Insertion);
            let mut h = 0u64;
            stream.replay(&mut |u| r.feed(u, |s, e| h += (e - s) as u64));
            black_box(h);
            feed_time = feed_time.min(t.elapsed());
        }
        let mut whole_time = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            black_box(answer_insertion_batch(&batch, &stream, pass_seed));
            whole_time = whole_time.min(t.elapsed());
        }
        let mut ref_time = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            black_box(answer_insertion_batch_reference(&batch, &stream, pass_seed));
            ref_time = ref_time.min(t.elapsed());
        }
        println!(
            "round {pass}: batch={} build={build_time:?} build+feed={feed_time:?} \
             whole={whole_time:?} reference={ref_time:?}",
            batch.len()
        );
        let (real, _) = answer_insertion_batch(&batch, &stream, pass_seed);
        answers = real;
    }

    for _ in 0..3 {
        let t0 = Instant::now();
        black_box(run_insertion(bank(trials, 7), &stream, 5));
        let a = t0.elapsed();
        let t0 = Instant::now();
        black_box(run_insertion_reference(bank(trials, 7), &stream, 5));
        println!("full run_insertion: {a:?}  reference: {:?}", t0.elapsed());
    }
}
