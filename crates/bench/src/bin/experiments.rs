//! Experiment driver: regenerates every table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p sgs-bench --release --bin experiments             # all, full size
//! cargo run -p sgs-bench --release --bin experiments -- --quick  # all, reduced
//! cargo run -p sgs-bench --release --bin experiments -- e2 e7   # subset
//! cargo run -p sgs-bench --release --bin experiments -- --markdown > tables.md
//! ```

use sgs_bench::registry;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let save: Option<String> = args
        .iter()
        .position(|a| a == "--save")
        .and_then(|i| args.get(i + 1).cloned());
    let selected: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && args
                    .get(i.wrapping_sub(1))
                    .map(|p| p != "--save")
                    .unwrap_or(true)
        })
        .map(|(_, a)| a)
        .collect();
    let mut saved = String::new();

    let mut total = Instant::now().elapsed();
    for exp in registry() {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == exp.id) {
            continue;
        }
        let start = Instant::now();
        let table = (exp.run)(quick);
        let dt = start.elapsed();
        total += dt;
        saved.push_str(&table.to_markdown());
        saved.push('\n');
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("\n[{}] {}", exp.id, exp.claim);
            println!("{table}");
            println!("  ({:.1}s)", dt.as_secs_f64());
        }
    }
    if let Some(path) = save {
        std::fs::write(&path, &saved).expect("write markdown tables");
        println!("markdown tables written to {path}");
    }
    if !markdown {
        println!(
            "\ntotal: {:.1}s{}",
            total.as_secs_f64(),
            if quick { " (quick mode)" } else { "" }
        );
    }
}
