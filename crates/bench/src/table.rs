//! Minimal fixed-width table formatting for experiment output.

use std::fmt;

/// A titled table with a header row and data rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + short description).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed after the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as GitHub-flavored markdown (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n{n}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let cols = self.header.len();
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        writeln!(f, "== {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = w[i]));
            }
            writeln!(f, "{}", s.trim_end())
        };
        line(f, &self.header)?;
        writeln!(f, "{}", "-".repeat(w.iter().sum::<usize>() + 2 * cols))?;
        for r in &self.rows {
            line(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        Ok(())
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fixed_width() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("bbbb"));
        assert!(s.contains("a note"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1.2345), "1.234");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
