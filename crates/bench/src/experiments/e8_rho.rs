//! E8 — Definition 3 / Lemma 4: the decomposition search recovers the
//! known closed forms of the fractional edge-cover number, and reports
//! the decomposition shape plus the tuple multiplicity `f_T(H)` the
//! sampler uses.

use crate::table::Table;
use sgs_graph::decompose::{decompose, Piece};
use sgs_graph::{Pattern, Rho};

pub fn run(_quick: bool) -> Table {
    let mut t = Table::new(
        "E8 — rho(H) closed forms and decompositions (Lemma 4)",
        &[
            "pattern",
            "rho computed",
            "rho closed form",
            "match",
            "decomposition",
            "f_T",
        ],
    );
    let mut cases: Vec<(Pattern, Rho, String)> = Vec::new();
    for r in 3..=7 {
        cases.push((
            Pattern::clique(r),
            Rho::from_halves(r as u32),
            format!("r/2 = {}", Rho::from_halves(r as u32)),
        ));
    }
    for k in 3..=8 {
        let expect = if k % 2 == 1 {
            Rho::from_halves(k as u32)
        } else {
            Rho::from_int(k as u32 / 2)
        };
        cases.push((
            Pattern::cycle(k),
            expect,
            format!("k/2 rounded up to half = {expect}"),
        ));
    }
    for k in 1..=5 {
        cases.push((
            Pattern::star(k),
            Rho::from_int(k as u32),
            format!("k = {k}"),
        ));
    }
    for k in 2..=5 {
        let expect = Rho::from_int(((k + 1) as u32).div_ceil(2));
        cases.push((
            Pattern::path(k),
            expect,
            format!("ceil((k+1)/2) = {expect}"),
        ));
    }
    for (p, expect, closed) in cases {
        let d = decompose(&p).expect("coverable");
        let shape: Vec<String> = d
            .pieces
            .iter()
            .map(|pc| match pc {
                Piece::OddCycle(vs) => format!("C{}", vs.len()),
                Piece::Star { petals, .. } => format!("S{}", petals.len()),
            })
            .collect();
        t.row(vec![
            p.name().to_string(),
            d.rho.to_string(),
            closed,
            if d.rho == expect { "yes" } else { "NO" }.to_string(),
            shape.join("+"),
            d.tuple_multiplicity.to_string(),
        ]);
    }
    t.note("claim: every row matches (rho(K_r)=r/2, rho(C_{2k+1})=k+1/2,");
    t.note("rho(C_{2k})=k, rho(S_k)=k, rho(P_k)=ceil((k+1)/2)).");
    t
}
