//! E7 — Theorem 2: on low-degeneracy graphs the ERS counter achieves
//! good accuracy with sample sets sized like `m·λ^{r-2}/#K_r`, while the
//! FGP estimator pays `(2m)^{r/2}/#K_r` trials on the same input — the
//! "who wins" comparison behind the Bera–Seshadhri conjecture.

use crate::table::{f, pct, Table};
use sgs_core::ers::{count_cliques_insertion, ErsParams};
use sgs_core::fgp::practical_trials;
use sgs_graph::{degeneracy::degeneracy, exact, gen, Pattern, StaticGraph};
use sgs_stream::hash::split_seed;
use sgs_stream::InsertionStream;

pub fn run(quick: bool) -> Table {
    let instances = if quick { 5 } else { 7 };
    let mut t = Table::new(
        "E7 — ERS on low-degeneracy graphs vs FGP budget (Thm 2)",
        &[
            "graph",
            "r",
            "lambda",
            "#Kr",
            "ERS rel err",
            "ERS passes",
            "ERS max s_t",
            "m*l^(r-2)/Kr",
            "FGP trials (m^(r/2)/Kr)",
        ],
    );
    let cases: Vec<(&str, sgs_graph::AdjListGraph)> = vec![
        ("BA(600,5)", gen::barabasi_albert(600, 5, 61)),
        ("BA(1200,6)", gen::barabasi_albert(1200, 6, 62)),
    ];
    for (name, g) in &cases {
        let m = g.num_edges();
        let lam = degeneracy(g);
        let stream = InsertionStream::from_graph(g, 63);
        for r in [3usize, 4] {
            let exact_r = exact::cliques::count_cliques(g, r);
            if exact_r < 10 {
                continue;
            }
            let params = ErsParams::practical(r, lam, 0.35, exact_r as f64);
            let est =
                count_cliques_insertion(&params, &stream, instances, split_seed(0xe7, r as u64));
            let theory_ers = m as f64 * (lam as f64).powi(r as i32 - 2) / exact_r as f64;
            let plan = sgs_core::SamplerPlan::new(&Pattern::clique(r)).unwrap();
            let fgp_k = practical_trials(m, plan.rho(), 0.35, exact_r as f64);
            t.row(vec![
                name.to_string(),
                r.to_string(),
                lam.to_string(),
                exact_r.to_string(),
                pct(est.relative_error(exact_r)),
                est.report.passes.to_string(),
                est.max_sample_size().to_string(),
                f(theory_ers),
                fgp_k.to_string(),
            ]);
        }
    }
    t.note("claim: ERS errors ~ eps with sample sets ~ m*lambda^(r-2)/#Kr;");
    t.note("the FGP trial column explodes with r while ERS's budget stays tame");
    t.note("(for r=4 on BA graphs, FGP needs orders of magnitude more samples).");
    t
}
