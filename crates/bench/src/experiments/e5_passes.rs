//! E5 — pass complexity: measured passes of every algorithm in this
//! repository next to the paper's claims and the prior-work numbers
//! quoted in §1.

use crate::table::Table;
use sgs_core::ers::{count_cliques_insertion, ErsParams};
use sgs_core::fgp::estimate_insertion;
use sgs_graph::{exact, gen, Pattern};
use sgs_stream::InsertionStream;

pub fn run(_quick: bool) -> Table {
    let mut t = Table::new(
        "E5 — pass complexity: measured vs claimed",
        &[
            "algorithm",
            "pattern",
            "claimed passes",
            "measured",
            "reference",
        ],
    );

    let g = gen::gnm(30, 150, 41);
    let ins = InsertionStream::from_graph(&g, 42);
    for pattern in [
        Pattern::triangle(),
        Pattern::cycle(5),
        Pattern::clique(4),
        Pattern::star(3),
        Pattern::path(3),
    ] {
        // The worst case is 3 passes; patterns whose optimal decomposition
        // is star-only skip the wedge round and use 2.
        let plan = sgs_core::SamplerPlan::new(&pattern).unwrap();
        let has_cycle = plan
            .pieces()
            .iter()
            .any(|p| matches!(p, sgs_graph::decompose::Piece::OddCycle(_)));
        let claim = if has_cycle {
            "3"
        } else {
            "3 (2: star-only decomposition)"
        };
        let est = estimate_insertion(&pattern, &ins, 200, 43).unwrap();
        t.row(vec![
            "FGP (Thm 1/17)".into(),
            pattern.name().to_string(),
            claim.into(),
            est.report.passes.to_string(),
            "this paper".into(),
        ]);
    }

    let ba = gen::barabasi_albert(60, 4, 44);
    let ba_stream = InsertionStream::from_graph(&ba, 45);
    for r in [3usize, 4, 5] {
        let exact_r = exact::cliques::count_cliques(&ba, r).max(1);
        // Pass counting only: one instance, one activity run, generous
        // lower bound keep the run fast without changing the pass count.
        let mut params = ErsParams::practical(r, 4, 0.5, exact_r as f64);
        params.q_act = 1;
        let est = count_cliques_insertion(&params, &ba_stream, 1, 46);
        t.row(vec![
            "ERS (Thm 2)".into(),
            format!("K{r}"),
            format!("<= 5r = {}", 5 * r),
            est.report.passes.to_string(),
            "this paper".into(),
        ]);
    }

    // Prior-work pass counts quoted in the paper's §1 (analytic).
    for (alg, pat, passes, refr) in [
        (
            "Manjunath et al. turnstile",
            "C_r",
            "1 (space m^r/#C^2)",
            "[Man+11]",
        ),
        ("MVV 2-pass", "triangle", "2 (space m/sqrt(#T))", "[MVV16]"),
        (
            "MVV 3-pass + degree oracle",
            "triangle",
            "3 (space m^1.5/#T)",
            "[MVV16]",
        ),
        (
            "Bera-Chakrabarti",
            "triangle",
            "4 (space m^1.5/#T)",
            "[BC17]",
        ),
        (
            "Bera-Seshadhri degeneracy",
            "triangle",
            "6 (space m*lambda/#T)",
            "[BS20]",
        ),
        (
            "AKK sampler-tree stream",
            "any H",
            ">= rho(H) ~ |V(H)|",
            "[AKK19]",
        ),
    ] {
        t.row(vec![
            alg.into(),
            pat.into(),
            passes.into(),
            "-".into(),
            refr.into(),
        ]);
    }
    t.note("claim: FGP uses 3 passes for every H even in turnstile streams,");
    t.note("matching [AKK19] space at constant passes; ERS stays within 5r.");
    t
}
