//! E12 (ablation) — ℓ₀-sampler repetitions: one subsampling hierarchy
//! fails on ties at the deepest level (a constant-probability event), so
//! the sampler keeps `R` independent repetitions. This table quantifies
//! the failure-rate/space trade-off that motivated `DEFAULT_REPS`, and
//! the knock-on effect on the turnstile estimator's success rate (each
//! failed `f1` kills one trial, deflating the estimate).

use crate::table::{f, pct, Table};
use sgs_stream::hash::split_seed;
use sgs_stream::l0::L0Sampler;
use sgs_stream::SpaceUsage;

pub fn run(quick: bool) -> Table {
    let trials: u64 = if quick { 5_000 } else { 20_000 };
    let support = 64u64;
    let mut t = Table::new(
        "E12 — ablation: l0-sampler repetitions vs failure rate",
        &[
            "reps R",
            "fail rate",
            "bytes/sampler",
            "est. trial deflation (4 samplers)",
        ],
    );
    for &reps in &[1usize, 2, 4, 8, 16] {
        let mut fails = 0u64;
        let mut bytes = 0;
        for trial in 0..trials {
            let mut s = L0Sampler::new(30, reps, split_seed(0xe12, trial * 31 + reps as u64));
            for k in 0..support {
                s.update(k * 977 + 3, 1);
            }
            bytes = s.space_bytes();
            if s.sample().is_none() {
                fails += 1;
            }
        }
        let p_fail = fails as f64 / trials as f64;
        // A triangle trial in the turnstile model consumes ~4 sampling
        // queries (2 edges + 1 neighbor + ...): each failure kills it.
        let deflation = 1.0 - (1.0 - p_fail).powi(4);
        t.row(vec![
            reps.to_string(),
            pct(p_fail),
            bytes.to_string(),
            f(deflation),
        ]);
    }
    t.note("claim: failure decays geometrically with R while space grows");
    t.note("linearly; R=8 pushes trial deflation below the estimator's");
    t.note("statistical noise, matching Lemma 7's 'success w.p. 1-1/n^c'.");
    t
}
