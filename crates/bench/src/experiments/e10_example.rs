//! E10 — the paper's §3 worked example: the 4-round adaptive triangle
//! finder, executed (a) against the query oracle, (b) as a 4-pass
//! insertion-only stream algorithm (Theorem 9), (c) as a 4-pass
//! turnstile algorithm (Theorem 11). The success probabilities must
//! coincide — that is the "same output distribution" guarantee.

use crate::table::{pct, Table};
use sgs_graph::{exact, gen, StaticGraph};
use sgs_query::exec::{run_insertion, run_on_oracle, run_turnstile};
use sgs_query::triangle_finder::{NeighborMode, TriangleFinder};
use sgs_query::ExactOracle;
use sgs_stream::hash::split_seed;
use sgs_stream::{InsertionStream, TurnstileStream};

pub fn run(quick: bool) -> Table {
    let trials: u64 = if quick { 3_000 } else { 12_000 };
    let g = gen::gnm(40, 220, 81);
    let m = g.num_edges();
    let exact_t = exact::triangles::count_triangles(&g);
    let ins = InsertionStream::from_graph(&g, 82);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 83);

    let mut t = Table::new(
        format!("E10 — 4-round triangle finder (m={m}, #T={exact_t})"),
        &[
            "executor",
            "success rate",
            "rounds",
            "passes",
            "queries/run",
        ],
    );

    let mut oracle_hits = 0u64;
    let mut rounds = 0;
    let mut queries = 0;
    for s in 0..trials {
        let mut o = ExactOracle::new(&g, split_seed(0xa10, s));
        let (out, rep) = run_on_oracle(
            TriangleFinder::new(split_seed(0xb10, s), NeighborMode::Indexed),
            &mut o,
        );
        if out.is_some() {
            oracle_hits += 1;
        }
        rounds = rep.rounds;
        queries = rep.queries;
    }
    t.row(vec![
        "oracle (query model)".into(),
        pct(oracle_hits as f64 / trials as f64),
        rounds.to_string(),
        "0".into(),
        queries.to_string(),
    ]);

    let mut ins_hits = 0u64;
    let mut passes = 0;
    for s in 0..trials {
        let (out, rep) = run_insertion(
            TriangleFinder::new(split_seed(0xb10, s), NeighborMode::Indexed),
            &ins,
            split_seed(0xc10, s),
        );
        if out.is_some() {
            ins_hits += 1;
        }
        passes = rep.passes;
    }
    t.row(vec![
        "insertion stream (Thm 9)".into(),
        pct(ins_hits as f64 / trials as f64),
        "4".into(),
        passes.to_string(),
        queries.to_string(),
    ]);

    let mut tst_hits = 0u64;
    for s in 0..trials {
        let (out, rep) = run_turnstile(
            TriangleFinder::new(split_seed(0xb10, s), NeighborMode::Relaxed),
            &tst,
            split_seed(0xd10, s),
        );
        if out.is_some() {
            tst_hits += 1;
        }
        passes = rep.passes;
    }
    t.row(vec![
        "turnstile stream (Thm 11)".into(),
        pct(tst_hits as f64 / trials as f64),
        "4".into(),
        passes.to_string(),
        queries.to_string(),
    ]);

    t.note("claim: the three success rates agree within sampling noise, with");
    t.note("4 rounds = 4 passes and 5 queries per run (1+2+1+1).");
    t
}
