//! E3 — Lemma 7: the ℓ₀-sampler returns a (near-)uniform element of the
//! support with low failure probability and polylogarithmic space. We
//! measure total-variation distance from uniform, failure rate, and the
//! concrete per-sampler footprint across support sizes, including
//! supports produced by heavy insert/delete churn.

use crate::table::{f, pct, Table};
use sgs_stream::hash::split_seed;
use sgs_stream::l0::{L0Sampler, DEFAULT_REPS};
use sgs_stream::SpaceUsage;
use std::collections::HashMap;

pub fn run(quick: bool) -> Table {
    let trials: u64 = if quick { 4_000 } else { 20_000 };
    let mut t = Table::new(
        "E3 — l0-sampler uniformity and space (Lemma 7)",
        &[
            "support",
            "churn deletes",
            "TV dist",
            "noise floor",
            "fail rate",
            "bytes/sampler",
        ],
    );
    for &(support, churn) in &[(4usize, 0usize), (64, 0), (64, 192), (512, 0), (512, 1024)] {
        let mut hits: HashMap<u64, u64> = HashMap::new();
        let mut fails = 0u64;
        let mut bytes = 0usize;
        for trial in 0..trials {
            let mut s = L0Sampler::new(30, DEFAULT_REPS, split_seed(0xe3, trial));
            // Live keys 0..support; churn keys live above and get deleted.
            for k in 0..support as u64 {
                s.update(k, 1);
            }
            for c in 0..churn as u64 {
                s.update(1_000_000 + c, 1);
            }
            for c in 0..churn as u64 {
                s.update(1_000_000 + c, -1);
            }
            bytes = s.space_bytes();
            match s.sample() {
                Some(k) => {
                    assert!(k < support as u64, "sampled a deleted key");
                    *hits.entry(k).or_default() += 1;
                }
                None => fails += 1,
            }
        }
        let total: u64 = hits.values().sum();
        let uniform = total as f64 / support as f64;
        let tv: f64 = (0..support as u64)
            .map(|k| {
                let h = *hits.get(&k).unwrap_or(&0) as f64;
                (h - uniform).abs()
            })
            .sum::<f64>()
            / (2.0 * total as f64);
        // Expected TV of a uniform multinomial sample of this size:
        // ~ sqrt(S/(2*pi*N)) — the noise floor an ideal sampler shows.
        let noise = (support as f64 / (2.0 * std::f64::consts::PI * total as f64)).sqrt();
        t.row(vec![
            support.to_string(),
            churn.to_string(),
            f(tv),
            f(noise),
            pct(fails as f64 / trials as f64),
            bytes.to_string(),
        ]);
    }
    t.note("claim: TV matches the multinomial noise floor (no detectable bias),");
    t.note("failures are rare, and space is independent of support size and");
    t.note("unchanged by churn (linear sketch).");
    t
}
