//! E2 — Theorem 17 / Theorem 1: the parallel-trials estimator reaches
//! `(1±ε)` accuracy, and its error decays like `1/√k` in the trial
//! count `k`. The last column (`err·√k`, which should be roughly
//! constant) exposes the decay rate; the paper-prescribed `k` for a
//! target `ε` is shown for reference.

use crate::table::{f, pct, Table};
use sgs_core::fgp::{estimate_insertion, practical_trials};
use sgs_graph::{exact, gen, Pattern, StaticGraph};
use sgs_stream::hash::split_seed;
use sgs_stream::InsertionStream;

pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 8 };
    let g = gen::gnm(60, 500, 21);
    let m = g.num_edges();
    let exact_t = exact::triangles::count_triangles(&g);
    let stream = InsertionStream::from_graph(&g, 22);
    let plan = sgs_core::SamplerPlan::new(&Pattern::triangle()).unwrap();

    let mut t = Table::new(
        format!("E2 — accuracy vs trials (triangle, n=60 m={m}, #T={exact_t})"),
        &["trials k", "mean rel err", "err x sqrt(k)", "passes"],
    );
    let trial_counts: &[usize] = if quick {
        &[2_000, 8_000, 32_000]
    } else {
        &[2_000, 8_000, 32_000, 128_000]
    };
    for &k in trial_counts {
        let mut errs = Vec::new();
        let mut passes = 0;
        for s in 0..seeds {
            let est =
                estimate_insertion(&Pattern::triangle(), &stream, k, split_seed(0xe2, s)).unwrap();
            errs.push(est.relative_error(exact_t));
            passes = est.report.passes;
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        t.row(vec![
            k.to_string(),
            pct(mean),
            f(mean * (k as f64).sqrt()),
            passes.to_string(),
        ]);
    }
    let eps = 0.1;
    let k_rec = practical_trials(m, plan.rho(), eps, exact_t as f64);
    t.note(format!(
        "paper-form budget for eps={eps}: k = c*(2m)^rho/(eps^2*#T) = {k_rec}"
    ));
    t.note("claim: err*sqrt(k) ~ constant (Chernoff), 3 passes at every k.");
    t
}
