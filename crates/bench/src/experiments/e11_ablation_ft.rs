//! E11 (ablation) — why the `1/f_T(H)` acceptance coin exists
//! (Algorithm 9, line 15). With the coin disabled, each copy of `H` is
//! returned with probability `f_T(H)/(2m)^ρ` instead of `1/(2m)^ρ`, so
//! the estimator overcounts by a factor approaching `f_T(H)` (not always
//! exactly: when one sampled tuple is compatible with several copies,
//! only one can be returned, which dampens the factor for patterns with
//! `|C(S)| > 1`). Patterns with `f_T = 1` are unaffected.

use crate::table::{f, Table};
use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_graph::{exact, gen, Pattern, StaticGraph};
use sgs_query::exec::run_on_oracle;
use sgs_query::{ExactOracle, Parallel};
use sgs_stream::hash::split_seed;

pub fn run(quick: bool) -> Table {
    let trials: usize = if quick { 60_000 } else { 250_000 };
    let mut t = Table::new(
        "E11 — ablation: estimator with vs without the 1/f_T acceptance coin",
        &[
            "pattern",
            "f_T",
            "#H exact",
            "with coin",
            "without coin",
            "overcount x",
        ],
    );
    let cases: Vec<(Pattern, sgs_graph::AdjListGraph)> = vec![
        (Pattern::triangle(), gen::gnm(25, 120, 91)), // f_T = 1: no effect
        (Pattern::clique(4), gen::gnm(13, 55, 92)),   // f_T = 24
        (Pattern::path(3), gen::gnm(18, 60, 93)),     // f_T = 8
        (Pattern::cycle(4), gen::gnm(16, 60, 94)),    // f_T = 16
    ];
    for (pattern, g) in cases {
        let plan = SamplerPlan::new(&pattern).unwrap();
        let exact_count = exact::count_pattern_auto(&g, &pattern).max(1);
        let m = g.num_edges();
        let run = |disable: bool, seed: u64| -> f64 {
            let par = Parallel::new(
                (0..trials)
                    .map(|i| {
                        let s = SubgraphSampler::new(
                            plan.clone(),
                            SamplerMode::Indexed,
                            split_seed(seed, i as u64),
                        );
                        if disable {
                            s.ablation_disable_acceptance()
                        } else {
                            s
                        }
                    })
                    .collect(),
            );
            let mut oracle = ExactOracle::new(&g, split_seed(seed, u64::MAX));
            let (outs, _) = run_on_oracle(par, &mut oracle);
            let hits = outs.iter().filter(|o| o.copy.is_some()).count() as f64;
            plan.rho().pow(2.0 * m as f64) * hits / trials as f64
        };
        let with = run(false, 0xe11);
        let without = run(true, 0xe11b);
        t.row(vec![
            pattern.name().to_string(),
            plan.tuple_multiplicity().to_string(),
            exact_count.to_string(),
            f(with),
            f(without),
            f(without / exact_count as f64),
        ]);
    }
    t.note("claim: the corrected estimator matches #H; the uncorrected one");
    t.note("overcounts by up to f_T(H), confirming the acceptance coin is");
    t.note("what makes the per-copy probability exactly 1/(2m)^rho.");
    t
}
