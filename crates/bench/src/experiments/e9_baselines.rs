//! E9 — baseline comparison (§1's related-work landscape): FGP vs
//! DOULION-style sparsification vs exact storage, across `#T` regimes.
//! DOULION's variance explodes when triangles are scarce; FGP's trial
//! budget grows instead — the crossover the paper's `m^ρ/#H` bound
//! formalizes. Space budgets are matched: DOULION keeps `p·m` edges
//! where FGP keeps `k` constant-size samplers.

use crate::table::{f, pct, Table};
use sgs_core::baselines::{doulion, exact_stream, triest};
use sgs_core::fgp::estimate_insertion;
use sgs_graph::{exact, gen, Pattern, StaticGraph};
use sgs_stream::hash::split_seed;
use sgs_stream::InsertionStream;

pub fn run(quick: bool) -> Table {
    let runs: u64 = if quick { 4 } else { 10 };
    let mut t = Table::new(
        "E9 — FGP vs DOULION vs exact across #T regimes",
        &[
            "workload",
            "#T",
            "method",
            "mean rel err",
            "space KiB",
            "passes",
        ],
    );
    // Three regimes: triangle-rich, moderate, triangle-poor.
    let base = gen::gnm(120, 1400, 71);
    let rich = gen::plant_pattern(&base, &Pattern::triangle(), 250, 72);
    let poor = gen::gnm(400, 1400, 73);
    let cases: Vec<(&str, sgs_graph::AdjListGraph)> =
        vec![("rich", rich), ("moderate", base), ("poor", poor)];

    for (name, g) in &cases {
        let m = g.num_edges();
        let exact_t = exact::triangles::count_triangles(g).max(1);
        let stream = InsertionStream::from_graph(g, 74);
        let workload = format!("{name} (m={m})");

        // Exact baseline.
        let ex = exact_stream::count_exact(&Pattern::triangle(), &stream);
        t.row(vec![
            workload.clone(),
            exact_t.to_string(),
            "exact store-all".into(),
            "0%".into(),
            (ex.space_bytes / 1024).max(1).to_string(),
            ex.passes.to_string(),
        ]);

        // FGP with a moderate budget.
        let trials = if quick { 20_000 } else { 60_000 };
        let mut errs = Vec::new();
        let mut space = 0;
        for s in 0..runs {
            let est =
                estimate_insertion(&Pattern::triangle(), &stream, trials, split_seed(0xe9, s))
                    .unwrap();
            errs.push(est.relative_error(exact_t));
            space = est.report.total_space_bytes();
        }
        let fgp_err = errs.iter().sum::<f64>() / errs.len() as f64;
        t.row(vec![
            workload.clone(),
            exact_t.to_string(),
            format!("FGP (k={trials})"),
            pct(fgp_err),
            (space / 1024).to_string(),
            "3".into(),
        ]);

        // DOULION at p = 0.1 (keeps ~10% of edges).
        let p = 0.1;
        let mut errs = Vec::new();
        let mut space = 0;
        for s in 0..runs {
            let d =
                doulion::estimate_doulion(&Pattern::triangle(), &stream, p, split_seed(0xe9a, s));
            errs.push((d.estimate - exact_t as f64).abs() / exact_t as f64);
            space = d.space_bytes;
        }
        let dl_err = errs.iter().sum::<f64>() / errs.len() as f64;
        t.row(vec![
            workload.clone(),
            exact_t.to_string(),
            format!("DOULION (p={p})"),
            pct(dl_err),
            (space / 1024).max(1).to_string(),
            "1".into(),
        ]);

        // TRIEST-style adaptive reservoir at ~10% of the edges.
        let cap = m / 10;
        let mut errs = Vec::new();
        let mut space = 0;
        for s in 0..runs {
            let tr = triest::estimate_triest(&stream, cap, split_seed(0xe9b, s));
            errs.push((tr.estimate - exact_t as f64).abs() / exact_t as f64);
            space = tr.space_bytes;
        }
        let tr_err = errs.iter().sum::<f64>() / errs.len() as f64;
        t.row(vec![
            workload.clone(),
            exact_t.to_string(),
            format!("TRIEST (M={cap})"),
            pct(tr_err),
            (space / 1024).max(1).to_string(),
            "1".into(),
        ]);
        let _ = f(0.0);
    }
    t.note("claim: in the poor regime DOULION's error blows up (few sampled");
    t.note("triangles survive p^3 thinning) while FGP degrades gracefully;");
    t.note("exact is error-free but stores the entire graph.");
    t
}
