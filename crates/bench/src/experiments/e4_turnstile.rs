//! E4 — Theorem 11 / Lemma 18: the turnstile estimator tracks the final
//! graph regardless of how much insert/delete churn the stream carries,
//! at the same (≤3) pass budget, and agrees with the insertion-only
//! estimator on the same final graph.

use crate::table::{f, pct, Table};
use sgs_core::fgp::{estimate_insertion, estimate_turnstile};
use sgs_graph::{exact, gen, Pattern, StaticGraph};
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, InsertionStream, TurnstileStream};

pub fn run(quick: bool) -> Table {
    let trials: usize = if quick { 8_000 } else { 15_000 };
    let seeds: u64 = if quick { 2 } else { 3 };
    let g = gen::gnm(40, 250, 31);
    let exact_t = exact::triangles::count_triangles(&g);
    let m = g.num_edges();

    let mut t = Table::new(
        format!("E4 — turnstile vs churn (triangle, m={m}, #T={exact_t})"),
        &[
            "stream",
            "updates",
            "deletions",
            "mean estimate",
            "rel err",
            "passes",
        ],
    );

    // Insertion-only reference.
    {
        let ins = InsertionStream::from_graph(&g, 32);
        let mut sum = 0.0;
        let mut passes = 0;
        for s in 0..seeds {
            let est = estimate_insertion(&Pattern::triangle(), &ins, trials, split_seed(0xe4, s))
                .unwrap();
            sum += est.estimate;
            passes = est.report.passes;
        }
        let mean = sum / seeds as f64;
        t.row(vec![
            "insertion-only".into(),
            ins.len().to_string(),
            "0.0%".into(),
            f(mean),
            pct((mean - exact_t as f64).abs() / exact_t as f64),
            passes.to_string(),
        ]);
    }

    for churn in [0.0, 1.0, 3.0] {
        let tst = TurnstileStream::from_graph_with_churn(&g, churn, 33);
        let mut sum = 0.0;
        let mut passes = 0;
        for s in 0..seeds {
            let est = estimate_turnstile(
                &Pattern::triangle(),
                &tst,
                trials,
                split_seed(0xe4 + churn as u64 + 1, s),
            )
            .unwrap();
            sum += est.estimate;
            passes = est.report.passes;
        }
        let mean = sum / seeds as f64;
        t.row(vec![
            format!("turnstile x{churn}"),
            tst.len().to_string(),
            pct(tst.deletion_fraction()),
            f(mean),
            pct((mean - exact_t as f64).abs() / exact_t as f64),
            passes.to_string(),
        ]);
    }
    t.note("claim: every row estimates the same #T within noise; passes <= 3.");
    t
}
