//! E6 — Theorem 1's space scaling: the trial budget needed for fixed
//! relative error grows like `(2m)^ρ(H)/#H`. The workload keeps the
//! triangle count proportional to `n` (a sparse base graph at constant
//! average degree — whose intrinsic `#T ≈ d³/6` is constant — plus `n/2`
//! planted triangles), so the predicted budget is
//! `k ∝ m^{3/2}/#T ∝ m^{1/2}`: the fitted log-log slope should be ≈ 0.5.

use crate::table::{f, Table};
use sgs_core::fgp::{estimate_insertion, practical_trials};
use sgs_graph::{exact, gen, Pattern, Rho, StaticGraph};
use sgs_stream::InsertionStream;

pub fn run(quick: bool) -> Table {
    let mut t = Table::new(
        "E6 — trial/space scaling with m (triangle; #T ~ n by planting)",
        &[
            "n",
            "m",
            "#T",
            "k for eps=0.2",
            "(2m)^1.5/#T",
            "measured err",
            "sketch KiB",
        ],
    );
    let sizes: &[usize] = if quick {
        &[300, 600, 1200]
    } else {
        &[300, 600, 1200, 2400]
    };
    let rho = Rho::from_halves(3);
    let mut log_m = Vec::new();
    let mut log_k = Vec::new();
    let mut log_t = Vec::new();
    for &n in sizes {
        let base = gen::gnm(n, 6 * n, 51);
        // Plant enough triangles that they dominate the base graph's
        // intrinsic ~d^3/6 (constant) triangle count.
        let g = gen::plant_pattern(&base, &Pattern::triangle(), 2 * n, 52);
        let m = g.num_edges();
        let exact_t = exact::triangles::count_triangles(&g).max(1);
        let k = practical_trials(m, rho, 0.2, exact_t as f64);
        let stream = InsertionStream::from_graph(&g, 53);
        let est = estimate_insertion(&Pattern::triangle(), &stream, k, 54).unwrap();
        let theory = (2.0 * m as f64).powf(1.5) / exact_t as f64;
        t.row(vec![
            n.to_string(),
            m.to_string(),
            exact_t.to_string(),
            k.to_string(),
            f(theory),
            f(est.relative_error(exact_t)),
            (est.report.total_space_bytes() / 1024).to_string(),
        ]);
        log_m.push((m as f64).ln());
        log_k.push((k as f64).ln());
        log_t.push((exact_t as f64).ln());
    }
    // Least-squares slope of ln k vs ln m.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mx, my) = (mean(&log_m), mean(&log_k));
    let var_m: f64 = log_m.iter().map(|x| (x - mx) * (x - mx)).sum();
    let slope = log_m
        .iter()
        .zip(&log_k)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / var_m;
    // k = c*(2m)^1.5/#T, so slope(k) must equal 1.5 - slope(#T).
    let mt = mean(&log_t);
    let slope_t = log_m
        .iter()
        .zip(&log_t)
        .map(|(x, y)| (x - mx) * (y - mt))
        .sum::<f64>()
        / var_m;
    t.note(format!(
        "fitted d(ln k)/d(ln m) = {slope:.2}; prediction 1.5 - d(ln #T)/d(ln m) \
         = 1.5 - {slope_t:.2} = {:.2}.",
        1.5 - slope_t
    ));
    t.note("claim: trials track (2m)^rho/#T, errors stay near the eps target.");
    t
}
