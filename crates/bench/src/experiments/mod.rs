//! Experiment implementations (see DESIGN.md §4 for the index).

pub mod e10_example;
pub mod e11_ablation_ft;
pub mod e12_ablation_l0;
pub mod e1_sampler_prob;
pub mod e2_accuracy;
pub mod e3_l0;
pub mod e4_turnstile;
pub mod e5_passes;
pub mod e6_space;
pub mod e7_ers;
pub mod e8_rho;
pub mod e9_baselines;
