//! E1 — Lemma 16: the FGP sampler returns any fixed copy of `H` with
//! probability exactly `1/(2m)^ρ(H)`, hence succeeds with probability
//! `#H/(2m)^ρ(H)`. We measure `hit_rate × (2m)^ρ / #H`, which should
//! be 1.0 for every pattern.

use crate::table::{f, Table};
use sgs_core::fgp::estimate_oracle;
use sgs_graph::{exact, gen, Pattern, StaticGraph};

pub fn run(quick: bool) -> Table {
    let trials: usize = if quick { 40_000 } else { 200_000 };
    let mut t = Table::new(
        "E1 — sampler hit probability vs Lemma 16 (oracle mode)",
        &[
            "pattern",
            "rho",
            "f_T",
            "m",
            "#H exact",
            "estimate",
            "est/exact",
        ],
    );
    // Workloads chosen so #H/(2m)^rho is observable at the trial budget.
    let cases: Vec<(Pattern, sgs_graph::AdjListGraph)> = vec![
        (Pattern::triangle(), gen::gnm(30, 150, 11)),
        (Pattern::star(2), gen::gnm(25, 80, 12)),
        (Pattern::star(3), gen::gnm(20, 70, 13)),
        (Pattern::path(3), gen::gnm(18, 60, 14)),
        (Pattern::clique(4), gen::gnm(13, 55, 15)),
        (Pattern::cycle(4), gen::gnm(16, 60, 16)),
        (
            Pattern::cycle(5),
            gen::plant_pattern(&gen::gnm(16, 50, 17), &Pattern::cycle(5), 10, 18),
        ),
    ];
    for (pattern, g) in cases {
        let exact_count = exact::count_pattern_auto(&g, &pattern);
        let plan = sgs_core::SamplerPlan::new(&pattern).unwrap();
        let est = estimate_oracle(&pattern, &g, trials, 0xe1).unwrap();
        let ratio = est.estimate / exact_count.max(1) as f64;
        t.row(vec![
            pattern.name().to_string(),
            plan.rho().to_string(),
            plan.tuple_multiplicity().to_string(),
            g.num_edges().to_string(),
            exact_count.to_string(),
            f(est.estimate),
            f(ratio),
        ]);
    }
    t.note("claim: est/exact = 1.0 up to sampling noise for every H (Lemma 16).");
    t
}
