//! # sgs-bench — experiment harness
//!
//! Regenerates every experiment table of the reproduction (E1–E10 in
//! DESIGN.md §4). The paper is a theory paper without an empirical
//! evaluation section, so these tables validate each theorem's
//! quantitative claim empirically; EXPERIMENTS.md records claim vs
//! measurement.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p sgs-bench --release --bin experiments           # full
//! cargo run -p sgs-bench --release --bin experiments -- --quick
//! cargo run -p sgs-bench --release --bin experiments -- e3 e7  # subset
//! ```

pub mod experiments;
pub mod table;

pub use table::Table;

/// An experiment: id, one-line claim, and a runner producing a table.
pub struct Experiment {
    /// Identifier, e.g. `"e1"`.
    pub id: &'static str,
    /// The paper claim it validates.
    pub claim: &'static str,
    /// Runner; `quick` trades precision for speed.
    pub run: fn(quick: bool) -> Table,
}

/// The experiment registry, in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            claim: "Lemma 16: each copy of H is sampled w.p. 1/(2m)^rho(H)",
            run: experiments::e1_sampler_prob::run,
        },
        Experiment {
            id: "e2",
            claim: "Thm 17/1: (1+-eps) estimate, error ~ 1/sqrt(trials)",
            run: experiments::e2_accuracy::run,
        },
        Experiment {
            id: "e3",
            claim: "Lemma 7: l0-sampler uniformity, failure rate, space",
            run: experiments::e3_l0::run,
        },
        Experiment {
            id: "e4",
            claim: "Thm 11/Lemma 18: turnstile sampler unaffected by churn",
            run: experiments::e4_turnstile::run,
        },
        Experiment {
            id: "e5",
            claim: "Thm 9/20: pass complexity (3 for FGP, <=5r for ERS)",
            run: experiments::e5_passes::run,
        },
        Experiment {
            id: "e6",
            claim: "Thm 1: space/trials scale as m^rho(H)/#H",
            run: experiments::e6_space::run,
        },
        Experiment {
            id: "e7",
            claim: "Thm 2: ERS space ~ m*lambda^(r-2)/#Kr on low-degeneracy graphs",
            run: experiments::e7_ers::run,
        },
        Experiment {
            id: "e8",
            claim: "Lemma 4/Def 3: rho closed forms for cliques/cycles/stars/paths",
            run: experiments::e8_rho::run,
        },
        Experiment {
            id: "e9",
            claim: "Sec 1: FGP vs DOULION vs exact — who wins per #H regime",
            run: experiments::e9_baselines::run,
        },
        Experiment {
            id: "e10",
            claim: "Sec 3 example: 4-round triangle finder across executors",
            run: experiments::e10_example::run,
        },
        Experiment {
            id: "e11",
            claim: "Ablation: the 1/f_T acceptance coin (Alg 9 l.15)",
            run: experiments::e11_ablation_ft::run,
        },
        Experiment {
            id: "e12",
            claim: "Ablation: l0-sampler repetitions vs failure rate",
            run: experiments::e12_ablation_l0::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_unique_and_ordered() {
        let reg = super::registry();
        assert_eq!(reg.len(), 12);
        for (i, e) in reg.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1));
        }
    }
}
