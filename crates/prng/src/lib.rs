//! # sgs-prng — seeded hashing and fast pseudo-randomness
//!
//! Every randomized component of the workspace draws its coins through
//! this crate, for two reasons:
//!
//! 1. **Reproducibility** — all generators are seeded explicitly, and
//!    independent random streams are derived deterministically through
//!    [`split_seed`], so every experiment is replayable bit-for-bit.
//! 2. **Speed** — the estimator instantiates one generator per sampler
//!    trial (thousands per run), so construction and per-draw cost are on
//!    the hot path. [`FastRng`] is xoshiro256++ (Blackman & Vigna):
//!    4 words of state, a handful of xor/rotate ops per draw — an order
//!    of magnitude cheaper than the ChaCha-based `StdRng` it replaced,
//!    while passing BigCrush at the statistical scales used here.
//!
//! The hashing side ([`splitmix64`], [`SeededHash`]) backs Lemma 7's
//! ℓ₀-sampler: SplitMix64 is a bijective finalizer with full avalanche,
//! and seeding it with independently drawn 64-bit keys approximates an
//! independent hash family closely enough that the sampler's uniformity is
//! statistically indistinguishable from ideal at our scales (validated
//! empirically by experiment E3). This is the standard engineering
//! substitution for the idealized random oracle in the analysis.
//!
//! Downstream crates reach these through the single `sgs_stream::hash`
//! facade; this crate exists separately only so `sgs_graph` (which
//! `sgs_stream` depends on) can use the same generator for its workload
//! generators without a dependency cycle.

use std::ops::Range;

/// The SplitMix64 finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A keyed 64-bit hash function.
#[derive(Clone, Copy, Debug)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Create with an explicit seed.
    pub fn new(seed: u64) -> Self {
        SeededHash {
            seed: splitmix64(seed ^ 0xa076_1d64_78bd_642f),
        }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash64(&self, key: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(key))
    }

    /// Hash a block of keys into `out` (truncating to the shorter of the
    /// two slices). One independent SplitMix64 chain per lane, so the
    /// loop has no cross-iteration dependency and autovectorizes — the
    /// blocked feed path uses this to hash a whole update block before
    /// touching any table or sketch.
    #[inline]
    pub fn hash64_batch(&self, keys: &[u64], out: &mut [u64]) {
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.hash64(k);
        }
    }

    /// Hash to a level in `0..=max_level`: level `l` with probability
    /// `2^-(l+1)` (geometric), clamped to `max_level`. Used by the
    /// ℓ₀-sampler's subsampling hierarchy: item `i` "survives to level l"
    /// iff `level(i) >= l`.
    #[inline]
    pub fn geometric_level(&self, key: u64, max_level: u32) -> u32 {
        self.hash64(key).trailing_zeros().min(max_level)
    }
}

/// Derive a deterministic sub-seed: `split_seed(s, i) != split_seed(s, j)`
/// for `i != j` with overwhelming probability. All components that need
/// multiple independent random streams derive them through this.
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed.wrapping_add(splitmix64(index ^ 0x6a09_e667_f3bc_c909)))
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// A fast seeded generator: xoshiro256++ with SplitMix64 state expansion.
///
/// Construction from a `u64` seed costs four SplitMix64 steps; each draw
/// is a few xor/rotate/add ops. Not cryptographic — streaming sketches and
/// Monte-Carlo trials only.
#[derive(Clone, Debug)]
pub struct FastRng {
    s: [u64; 4],
}

impl FastRng {
    /// Seed deterministically from a single `u64` (SplitMix64 expansion,
    /// the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix64(z);
        }
        // The all-zero state is the one fixed point; SplitMix64 never
        // produces four zero words from any seed, but keep the guard local
        // to the invariant rather than the generator loop.
        debug_assert!(s.iter().any(|&w| w != 0));
        FastRng { s }
    }

    /// The raw 4-word xoshiro256++ state, for checkpointing. Paired with
    /// [`FastRng::from_state`], this lets a persistence layer freeze a
    /// generator mid-stream and resume it bit-for-bit.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`FastRng::state`].
    /// The caller is responsible for never passing the all-zero state
    /// (the generator's one fixed point); persistence codecs reject it at
    /// decode time with a corruption error.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        debug_assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
        FastRng { s }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the **open** interval `(0, 1)`: the top 53 bits
    /// offset by half an ulp, so neither endpoint is reachable. Inverse
    /// transforms divide by (or take the log of) the draw — the skip-ahead
    /// reservoir gap `floor(t/u) - t` and Algorithm-L jumps both need
    /// `u != 0`, and this guarantees it structurally instead of by
    /// rejection.
    #[inline]
    pub fn gen_unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill `out` with independent open-interval `(0, 1)` draws (one
    /// [`FastRng::gen_unit_f64`] per slot, same stream order as calling it
    /// in a loop). The loop body is a handful of xor/rotate/add ops plus
    /// one convert per lane with no memory traffic besides the store, so
    /// batched consumers (gap redraws staged per block, bench baselines)
    /// get their coins at close to the generator's raw throughput.
    #[inline]
    pub fn fill_unit_f64(&mut self, out: &mut [f64]) {
        for o in out {
            *o = self.gen_unit_f64();
        }
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
        self.gen_f64() < p
    }

    /// Uniform draw from `0..n` via Lemire's widening multiply, without a
    /// rejection loop — a branch-free constant-time draw.
    ///
    /// **Bias audit** (the reservoir offer path draws `gen_range(0..seen)`
    /// once per offer, so `n` here reaches the stream length): the
    /// multiply partitions the 2^64 raw values into `n` buckets of size
    /// `floor(2^64/n)` or `ceil(2^64/n)`, so any outcome's probability
    /// deviates from `1/n` by less than `2^-64` absolute, i.e. less than
    /// `n/2^64` *relative*. At the largest `seen` this workspace reaches
    /// (streams well under 2^40 updates) that is a relative distortion
    /// below 2^-24 on a per-offer acceptance test — more than 30 bits
    /// beneath the Monte-Carlo noise floor of any estimate built from
    /// thousands of trials, and far below what a chi-square test at our
    /// scales can resolve (the distribution-equivalence suite in
    /// `tests/reservoir_equivalence.rs` runs exactly such tests and sees
    /// nothing). A rejection loop would remove the bias entirely but puts
    /// an unpredictable branch on every sketch-update draw; documented
    /// trade, deliberately kept.
    #[inline]
    pub fn gen_index(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw from an integer range, half-open (`a..b`) or
    /// inclusive (`a..=b`); panics if empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`FastRng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Sample uniformly from `self` (panics if empty).
    fn sample(self, rng: &mut FastRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut FastRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.gen_index(span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut FastRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // span = hi - lo + 1 never overflows u64 for these types
                // except the full u64 domain, which no caller needs.
                let span = (hi - lo) as u64 + 1;
                lo + rng.gen_index(span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Avalanche smoke test: flipping one input bit flips ~half the
        // output bits on average.
        let mut total = 0u32;
        for i in 0..64 {
            total += (splitmix64(7) ^ splitmix64(7 ^ (1 << i))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }

    #[test]
    fn seeded_hash_differs_by_seed() {
        let a = SeededHash::new(1);
        let b = SeededHash::new(2);
        assert_ne!(a.hash64(100), b.hash64(100));
        assert_eq!(a.hash64(100), SeededHash::new(1).hash64(100));
    }

    #[test]
    fn geometric_level_distribution() {
        let h = SeededHash::new(33);
        let mut counts = [0usize; 8];
        let trials = 1 << 16;
        for k in 0..trials {
            let l = h.geometric_level(k, 7);
            counts[l as usize] += 1;
        }
        // Level 0 should hold about half the keys.
        let frac0 = counts[0] as f64 / trials as f64;
        assert!((0.47..0.53).contains(&frac0), "level-0 fraction {frac0}");
        // Monotone decreasing up to noise.
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn split_seed_spreads() {
        let s = 12345;
        let derived: std::collections::HashSet<u64> = (0..1000).map(|i| split_seed(s, i)).collect();
        assert_eq!(derived.len(), 1000);
    }

    #[test]
    fn fast_rng_deterministic_per_seed() {
        let mut a = FastRng::seed_from_u64(9);
        let mut b = FastRng::seed_from_u64(9);
        let mut c = FastRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_resumes_exactly() {
        let mut a = FastRng::seed_from_u64(77);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = FastRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = FastRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn unit_f64_is_open_interval_and_uniform() {
        let mut r = FastRng::seed_from_u64(6);
        let mut sum = 0.0;
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..50_000 {
            let x = r.gen_unit_f64();
            assert!(x > 0.0 && x < 1.0, "x = {x} escaped (0,1)");
            sum += x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / 50_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
        // 50k draws should press close to both (open) endpoints.
        assert!(min < 1e-3 && max > 1.0 - 1e-3, "min {min} max {max}");
        // The smallest representable draw is half an ulp above zero, so
        // even the worst case divides safely.
        let floor = 0.5 * (1.0 / (1u64 << 53) as f64);
        assert!(min >= floor);
    }

    #[test]
    fn fill_unit_matches_scalar_draw_sequence() {
        let mut a = FastRng::seed_from_u64(11);
        let mut b = FastRng::seed_from_u64(11);
        let mut buf = [0.0f64; 37];
        a.fill_unit_f64(&mut buf);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, b.gen_unit_f64(), "lane {i} diverged");
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut r = FastRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(5u32..15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values hit: {seen:?}");
        // usize and u64 flavors compile and respect bounds too.
        assert!(r.gen_range(0usize..3) < 3);
        assert!(r.gen_range(0u64..3) < 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = FastRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.28..0.32).contains(&frac), "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let base: Vec<u32> = (0..50).collect();
        let run = |seed| {
            let mut v = base.clone();
            FastRng::seed_from_u64(seed).shuffle(&mut v);
            v
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
    }

    #[test]
    fn shuffle_is_roughly_uniform_on_first_slot() {
        // Each element should land in position 0 about 1/8 of the time.
        let mut wins = [0u32; 8];
        for seed in 0..8000u64 {
            let mut v: Vec<usize> = (0..8).collect();
            FastRng::seed_from_u64(split_seed(0x5eed, seed)).shuffle(&mut v);
            wins[v[0]] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let dev = (w as f64 - 1000.0).abs() / 1000.0;
            assert!(dev < 0.15, "element {i}: {w} wins");
        }
    }
}
